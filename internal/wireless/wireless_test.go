package wireless

import (
	"testing"

	"vdtn/internal/event"
	"vdtn/internal/geo"
	"vdtn/internal/units"
	"vdtn/internal/xrand"
)

// scripted is a test entity whose position is a function of time.
type scripted struct {
	id int
	fn func(now float64) geo.Point
}

func (s *scripted) ID() int                        { return s.id }
func (s *scripted) Position(now float64) geo.Point { return s.fn(now) }

func fixed(id int, p geo.Point) *scripted {
	return &scripted{id: id, fn: func(float64) geo.Point { return p }}
}

// recorder captures contact events.
type recorder struct {
	ups, downs [][2]int
	onUp       func(now float64, a, b Entity)
}

func (r *recorder) ContactUp(now float64, a, b Entity) {
	r.ups = append(r.ups, [2]int{a.ID(), b.ID()})
	if r.onUp != nil {
		r.onUp(now, a, b)
	}
}

func (r *recorder) ContactDown(now float64, a, b Entity) {
	r.downs = append(r.downs, [2]int{a.ID(), b.ID()})
}

func testCfg() Config {
	return Config{Range: 30, Rate: units.Mbit(6), ScanInterval: 1}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Range: 0, Rate: units.Mbit(6), ScanInterval: 1},
		{Range: 30, Rate: 0, ScanInterval: 1},
		{Range: 30, Rate: units.Mbit(6), ScanInterval: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if err := testCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestContactUpWithinRange(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 20, Y: 0}))  // within 30 m of 0
	m.Add(fixed(2, geo.Point{X: 100, Y: 0})) // out of range of both
	m.Start(0)
	s.RunUntil(0.5)
	if len(rec.ups) != 1 || rec.ups[0] != [2]int{0, 1} {
		t.Fatalf("ups = %v, want [[0 1]]", rec.ups)
	}
	if !m.Connected(0, 1) || !m.Connected(1, 0) {
		t.Fatal("Connected not symmetric")
	}
	if m.Connected(0, 2) {
		t.Fatal("far pair connected")
	}
}

func TestContactAtExactRangeBoundary(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 30, Y: 0})) // exactly at range: in contact
	m.Start(0)
	s.RunUntil(0.5)
	if !m.Connected(0, 1) {
		t.Fatal("pair at exact range not connected")
	}
}

func TestContactDownWhenMovingApart(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	// Node 1 drives away at 10 m/s starting 10 m from node 0.
	m.Add(&scripted{id: 1, fn: func(now float64) geo.Point {
		return geo.Point{X: 10 + 10*now, Y: 0}
	}})
	m.Start(0)
	s.RunUntil(10)
	if len(rec.ups) != 1 {
		t.Fatalf("ups = %v", rec.ups)
	}
	if len(rec.downs) != 1 || rec.downs[0] != [2]int{0, 1} {
		t.Fatalf("downs = %v, want [[0 1]]", rec.downs)
	}
	if m.Connected(0, 1) {
		t.Fatal("still connected after separation")
	}
}

func TestGridFindsDiagonalNeighbors(t *testing.T) {
	// Pair in diagonal grid cells but within range; regression against an
	// off-by-one in the 3x3 neighbourhood walk.
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{X: 29, Y: 29}))
	m.Add(fixed(1, geo.Point{X: 31, Y: 31})) // other cell, dist ~2.8
	m.Start(0)
	s.RunUntil(0.5)
	if !m.Connected(0, 1) {
		t.Fatal("diagonal-cell neighbours missed")
	}
}

func TestNegativeCoordinates(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	m.Add(fixed(0, geo.Point{X: -5, Y: -5}))
	m.Add(fixed(1, geo.Point{X: 5, Y: 5}))
	m.Start(0)
	s.RunUntil(0.5)
	if !m.Connected(0, 1) {
		t.Fatal("pair straddling origin missed (floor vs trunc bug)")
	}
}

func TestPeersOf(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	m.Add(fixed(3, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 10, Y: 0}))
	m.Add(fixed(2, geo.Point{X: 0, Y: 10}))
	m.Add(fixed(9, geo.Point{X: 500, Y: 500}))
	m.Start(0)
	s.RunUntil(0.5)
	got := m.PeersOf(3)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("PeersOf(3) = %v, want [1 2]", got)
	}
	if got := m.PeersOf(9); len(got) != 0 {
		t.Fatalf("PeersOf(9) = %v", got)
	}
}

func TestTransferCompletes(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 10, Y: 0}))
	m.Start(0)
	s.RunUntil(0.5)

	var doneAt float64
	aborted := false
	ok := m.StartTransfer(s.Now(), 0, 1, units.MB(1.5), // 2 s at 6 Mbit/s
		func(now float64) { doneAt = now },
		func(now float64) { aborted = true })
	if !ok {
		t.Fatal("StartTransfer refused")
	}
	if !m.Busy(0) || !m.Busy(1) {
		t.Fatal("endpoints not busy during transfer")
	}
	s.RunUntil(5)
	if aborted {
		t.Fatal("transfer aborted")
	}
	if doneAt != 2.5 {
		t.Fatalf("transfer completed at %v, want 2.5", doneAt)
	}
	if m.Busy(0) || m.Busy(1) {
		t.Fatal("endpoints busy after completion")
	}
	if m.TransfersCompleted != 1 || m.TransfersStarted != 1 {
		t.Fatalf("counters: started=%d completed=%d", m.TransfersStarted, m.TransfersCompleted)
	}
}

func TestTransferRefusedWhenNotConnected(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 500, Y: 0}))
	m.Start(0)
	s.RunUntil(0.5)
	if m.StartTransfer(s.Now(), 0, 1, units.KB(1), nil, nil) {
		t.Fatal("transfer started without contact")
	}
}

func TestTransferRefusedWhenBusy(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 10, Y: 0}))
	m.Add(fixed(2, geo.Point{X: 0, Y: 10}))
	m.Start(0)
	s.RunUntil(0.5)
	if !m.StartTransfer(s.Now(), 0, 1, units.MB(10), nil, nil) {
		t.Fatal("first transfer refused")
	}
	// 0 and 1 are now busy; 2 is idle but its peers are busy.
	if m.StartTransfer(s.Now(), 2, 0, units.KB(1), nil, nil) {
		t.Fatal("transfer to busy receiver started")
	}
	if m.StartTransfer(s.Now(), 1, 2, units.KB(1), nil, nil) {
		t.Fatal("transfer from busy sender started")
	}
}

func TestTransferAbortOnContactBreak(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	// Node 1 leaves range at t≈2.0 (starts at 10 m, 10 m/s).
	m.Add(&scripted{id: 1, fn: func(now float64) geo.Point {
		return geo.Point{X: 10 + 10*now, Y: 0}
	}})
	m.Start(0)
	s.RunUntil(0.5)

	done := false
	var abortAt float64 = -1
	// 100 Mbit => ~16.7 s at 6 Mbit/s: cannot finish before separation.
	if !m.StartTransfer(s.Now(), 0, 1, units.MB(12.5), func(float64) { done = true },
		func(now float64) { abortAt = now }) {
		t.Fatal("transfer refused")
	}
	s.RunUntil(30)
	if done {
		t.Fatal("doomed transfer completed")
	}
	if abortAt < 0 {
		t.Fatal("abort callback never fired")
	}
	if m.Busy(0) || m.Busy(1) {
		t.Fatal("busy after abort")
	}
	if m.TransfersAborted != 1 {
		t.Fatalf("TransfersAborted = %d", m.TransfersAborted)
	}
}

func TestAbortOnlyAffectsBrokenPair(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 10, Y: 0}))
	// Node 2 near node 3, both far from 0/1; 3 drives off at t≈2.
	m.Add(fixed(2, geo.Point{X: 1000, Y: 0}))
	m.Add(&scripted{id: 3, fn: func(now float64) geo.Point {
		return geo.Point{X: 1010 + 10*now, Y: 0}
	}})
	m.Start(0)
	s.RunUntil(0.5)

	okDone := false
	if !m.StartTransfer(s.Now(), 0, 1, units.MB(1.5), func(float64) { okDone = true }, nil) {
		t.Fatal("stable-pair transfer refused")
	}
	doomedAborted := false
	if !m.StartTransfer(s.Now(), 2, 3, units.MB(12.5), nil, func(float64) { doomedAborted = true }) {
		t.Fatal("doomed-pair transfer refused")
	}
	s.RunUntil(30)
	if !okDone {
		t.Fatal("stable pair's transfer was lost")
	}
	if !doomedAborted {
		t.Fatal("doomed pair's transfer not aborted")
	}
}

func TestContactUpHandlerCanStartTransferImmediately(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	started := false
	rec := &recorder{onUp: func(now float64, a, b Entity) {
		started = m.StartTransfer(now, a.ID(), b.ID(), units.KB(10), nil, nil)
	}}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 10, Y: 0}))
	m.Start(0)
	s.RunUntil(0.5)
	if !started {
		t.Fatal("transfer could not start from ContactUp handler")
	}
}

func TestDuplicateEntityPanics(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.Add(fixed(1, geo.Point{}))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate id did not panic")
		}
	}()
	m.Add(fixed(1, geo.Point{X: 5}))
}

func TestSelfTransferPanics(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("self transfer did not panic")
		}
	}()
	m.StartTransfer(0, 1, 1, units.KB(1), nil, nil)
}

// Property: against a brute-force O(n²) oracle, the grid scan finds exactly
// the same contact pairs for random node clouds.
func TestGridMatchesBruteForce(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 30; trial++ {
		s := event.NewScheduler()
		m := NewMedium(s, testCfg())
		m.SetHandler(&recorder{})
		n := 20 + rng.IntN(40)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300}
			m.Add(fixed(i, pts[i]))
		}
		m.Start(0)
		s.RunUntil(0.5)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := pts[i].Dist(pts[j]) <= 30
				if got := m.Connected(i, j); got != want {
					t.Fatalf("trial %d: pair (%d,%d) dist %.2f: got %v want %v",
						trial, i, j, pts[i].Dist(pts[j]), got, want)
				}
			}
		}
	}
}

func benchScan(b *testing.B, n int) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	rng := xrand.New(1)
	for i := 0; i < n; i++ {
		m.Add(fixed(i, geo.Point{X: rng.Float64() * 4500, Y: rng.Float64() * 3400}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.scan(float64(i))
	}
}

// BenchmarkScan45Nodes measures a proximity scan over the paper's
// population: 40 vehicles + 5 relays.
func BenchmarkScan45Nodes(b *testing.B) { benchScan(b, 45) }

// BenchmarkScan500Nodes measures the spatial grid at 11x the paper's
// density, where a naive O(n²) scan would dominate the whole simulation.
func BenchmarkScan500Nodes(b *testing.B) { benchScan(b, 500) }
