// Package wireless models the radio layer of the VDTN: disk-range contact
// detection between moving nodes and finite-rate message transfers over
// established contacts.
//
// The model is the one the paper's evaluation actually ran on (the ONE
// simulator's broadcast interface): two nodes are in contact iff their
// distance is at most the transmission range (30 m for the paper's IEEE
// 802.11b setup); a contact carries a fixed net data rate (6 Mbit/s); a
// node takes part in at most one transfer at a time; and a transfer whose
// contact breaks mid-flight is aborted and the partial data discarded.
//
// Contacts are detected by a periodic proximity scan (default every
// simulated second — the ONE's granularity class) over a uniform spatial
// hash grid with cell size equal to the radio range, so each scan is
// O(nodes + contacts) rather than O(nodes²).
package wireless

import (
	"fmt"
	"math"
	"sort"

	"vdtn/internal/event"
	"vdtn/internal/geo"
	"vdtn/internal/units"
)

// Entity is a radio-equipped node tracked by the medium.
type Entity interface {
	// ID returns the node's unique non-negative id.
	ID() int
	// Position returns the node position at time now. The medium queries
	// positions with non-decreasing timestamps.
	Position(now float64) geo.Point
}

// ContactHandler receives contact lifecycle notifications. ContactUp and
// ContactDown are invoked once per (unordered) pair transition, with
// a.ID() < b.ID().
type ContactHandler interface {
	ContactUp(now float64, a, b Entity)
	ContactDown(now float64, a, b Entity)
}

// Config parameterizes the medium.
type Config struct {
	// Range is the radio transmission range in metres (> 0).
	Range float64
	// Rate is the contact data rate (> 0).
	Rate units.BitRate
	// ScanInterval is the proximity-scan period in seconds (> 0).
	ScanInterval float64
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	switch {
	case c.Range <= 0:
		return fmt.Errorf("wireless: non-positive range %v", c.Range)
	case c.Rate <= 0:
		return fmt.Errorf("wireless: non-positive rate %v", float64(c.Rate))
	case c.ScanInterval <= 0:
		return fmt.Errorf("wireless: non-positive scan interval %v", c.ScanInterval)
	}
	return nil
}

// Transfer is an in-flight message transfer between two connected nodes.
type Transfer struct {
	From, To int
	Size     units.Bytes
	Started  float64

	handle  *event.Handle
	onDone  func(now float64)
	onAbort func(now float64)
}

type pairKey [2]int

func key(a, b int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Medium owns contact state and in-flight transfers.
// The zero value is not usable; use NewMedium.
type Medium struct {
	sched    *event.Scheduler
	cfg      Config
	entities []Entity
	byID     map[int]Entity
	handler  ContactHandler

	connected map[pairKey]bool
	busy      map[int]*Transfer

	stopScan func()
	planned  bool

	rec           *Recording // transition tap, nil when not recording
	replayCur     TransitionCursor
	replayNext    Transition
	replayHas     bool
	replayChecked bool // node ids pre-validated at StartReplay; skip per-tick checks

	// Counters for tests and reports.
	ContactsSeen       uint64 // ContactUp events
	TransfersStarted   uint64
	TransfersCompleted uint64
	TransfersAborted   uint64
}

// NewMedium returns a medium scheduling on sched. Panics on invalid config.
func NewMedium(sched *event.Scheduler, cfg Config) *Medium {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &Medium{
		sched:     sched,
		cfg:       cfg,
		byID:      make(map[int]Entity),
		connected: make(map[pairKey]bool),
		busy:      make(map[int]*Transfer),
	}
}

// Add registers an entity. Panics on duplicate or negative ids, which are
// always scenario-assembly bugs.
func (m *Medium) Add(e Entity) {
	id := e.ID()
	if id < 0 {
		panic(fmt.Sprintf("wireless: negative entity id %d", id))
	}
	if _, dup := m.byID[id]; dup {
		panic(fmt.Sprintf("wireless: duplicate entity id %d", id))
	}
	m.entities = append(m.entities, e)
	m.byID[id] = e
}

// SetHandler installs the contact lifecycle handler. Must be called before
// Start.
func (m *Medium) SetHandler(h ContactHandler) { m.handler = h }

// Start begins periodic proximity scanning at time `from`.
func (m *Medium) Start(from float64) {
	if m.stopScan != nil || m.planned {
		panic("wireless: Start called twice")
	}
	m.stopScan = m.sched.Every(from, m.cfg.ScanInterval, m.scan)
}

// ContactWindow is one scheduled contact for plan-driven operation.
type ContactWindow struct {
	A, B       int
	Start, End float64
}

// StartPlan drives contacts from an explicit schedule instead of proximity
// scanning: each window raises the contact at Start and breaks it (aborting
// any transfer riding it) at End. Entity positions are ignored in this
// mode. Windows must reference registered entities and be pre-validated
// (internal/contactplan does both); StartPlan panics on unknown ids.
// Start and StartPlan are mutually exclusive.
func (m *Medium) StartPlan(windows []ContactWindow) {
	if m.stopScan != nil || m.planned {
		panic("wireless: StartPlan after Start")
	}
	m.planned = true
	for _, win := range windows {
		if _, ok := m.byID[win.A]; !ok {
			panic(fmt.Sprintf("wireless: plan references unknown node %d", win.A))
		}
		if _, ok := m.byID[win.B]; !ok {
			panic(fmt.Sprintf("wireless: plan references unknown node %d", win.B))
		}
		k := key(win.A, win.B)
		m.sched.At(win.Start, func(now float64) {
			if m.connected[k] {
				return // overlapping windows merged upstream; be safe
			}
			m.raise(now, k)
		})
		m.sched.At(win.End, func(now float64) {
			if !m.connected[k] {
				return
			}
			m.drop(now, k)
		})
	}
}

// RecordTo taps every subsequent contact transition into rec, stamping the
// medium's scan interval on it. Install the tap before Start (or StartPlan /
// StartReplay). A trace recorded from a scan- or replay-driven run drives a
// bit-identical re-run via StartReplay; a trace recorded from StartPlan may
// hold off-tick transition times, which replay quantizes to the next scan
// tick. Recording costs one slice append per transition.
func (m *Medium) RecordTo(rec *Recording) {
	if rec == nil {
		panic("wireless: RecordTo(nil)")
	}
	if m.stopScan != nil || m.planned {
		panic("wireless: RecordTo after Start")
	}
	rec.ScanInterval = m.cfg.ScanInterval
	m.rec = rec
}

// StartReplay drives contacts from a recorded transition trace instead of
// proximity scanning. It re-runs the recording through the same periodic
// tick loop the live scan uses — each tick applies the recorded transitions
// due at or before it, downs and ups in recorded order — so a replayed run
// schedules exactly the same events in exactly the same order as the live
// run that produced the recording: results are bit-identical. Entity
// positions are never queried.
//
// src is either an in-memory *Recording or a zero-copy *RecordingView
// (any ReplaySource); the medium takes one cursor from it, so any number
// of replaying media may share one source. The source's scan interval must
// equal the medium's, and every referenced node must be registered;
// violations panic as scenario-assembly bugs — eagerly for an in-memory
// recording, at the offending tick for a streamed source (a view's node
// range is pre-checked via MaxNode by the sim layer). Start, StartPlan and
// StartReplay are mutually exclusive.
func (m *Medium) StartReplay(from float64, src ReplaySource) {
	if m.stopScan != nil || m.planned {
		panic("wireless: StartReplay after Start")
	}
	if scan := src.Meta().ScanInterval; scan != m.cfg.ScanInterval {
		panic(fmt.Sprintf("wireless: recording scan interval %v, medium %v",
			scan, m.cfg.ScanInterval))
	}
	if rec, ok := src.(*Recording); ok {
		// Materialized traces are cheap to pre-check, preserving the
		// fail-at-assembly contract for direct library use — and sparing
		// the per-tick re-check in the replay hot loop.
		for _, tr := range rec.Transitions {
			m.checkReplayNodes(tr)
		}
		m.replayChecked = true
	}
	m.replayCur = src.Cursor()
	m.replayNext, m.replayHas = m.replayCur.Next()
	m.stopScan = m.sched.Every(from, m.cfg.ScanInterval, m.replayTick)
}

// checkReplayNodes panics if a replayed transition references an entity
// the medium does not have — a scenario-assembly bug.
func (m *Medium) checkReplayNodes(tr Transition) {
	if _, ok := m.byID[tr.A]; !ok {
		panic(fmt.Sprintf("wireless: recording references unknown node %d", tr.A))
	}
	if _, ok := m.byID[tr.B]; !ok {
		panic(fmt.Sprintf("wireless: recording references unknown node %d", tr.B))
	}
}

// replayTick applies the recorded transitions due at this scan tick. A
// recording captured from a live scan holds only tick-aligned timestamps,
// so each transition fires on the exact tick it was recorded at; off-tick
// timestamps (hand-edited traces) apply at the first tick at or after them.
func (m *Medium) replayTick(now float64) {
	for m.replayHas && m.replayNext.Time <= now {
		tr := m.replayNext
		m.replayNext, m.replayHas = m.replayCur.Next()
		if !m.replayChecked {
			m.checkReplayNodes(tr)
		}
		k := key(tr.A, tr.B)
		switch {
		case tr.Up && !m.connected[k]:
			m.raise(now, k)
		case !tr.Up && m.connected[k]:
			m.drop(now, k)
		}
	}
}

// Stop halts scanning (in-flight transfers keep running to completion).
func (m *Medium) Stop() {
	if m.stopScan != nil {
		m.stopScan()
		m.stopScan = nil
	}
}

// Connected reports whether nodes a and b are currently in contact.
func (m *Medium) Connected(a, b int) bool { return m.connected[key(a, b)] }

// Busy reports whether node id is currently part of a transfer.
func (m *Medium) Busy(id int) bool { return m.busy[id] != nil }

// Rate returns the configured contact data rate.
func (m *Medium) Rate() units.BitRate { return m.cfg.Rate }

// PeersOf returns the ids currently in contact with node id, ascending.
func (m *Medium) PeersOf(id int) []int {
	var out []int
	for k, up := range m.connected {
		if !up {
			continue
		}
		switch id {
		case k[0]:
			out = append(out, k[1])
		case k[1]:
			out = append(out, k[0])
		}
	}
	sort.Ints(out)
	return out
}

// scan recomputes the proximity graph and fires contact transitions.
func (m *Medium) scan(now float64) {
	curr := m.proximityPairs(now)

	// Downs first: a contact that broke frees its endpoints' radios before
	// new-contact handlers try to start transfers on this same tick.
	var downs []pairKey
	for k, up := range m.connected {
		if up && !curr[k] {
			downs = append(downs, k)
		}
	}
	sort.Slice(downs, func(i, j int) bool {
		if downs[i][0] != downs[j][0] {
			return downs[i][0] < downs[j][0]
		}
		return downs[i][1] < downs[j][1]
	})
	for _, k := range downs {
		m.drop(now, k)
	}

	var ups []pairKey
	for k := range curr {
		if !m.connected[k] {
			ups = append(ups, k)
		}
	}
	sort.Slice(ups, func(i, j int) bool {
		if ups[i][0] != ups[j][0] {
			return ups[i][0] < ups[j][0]
		}
		return ups[i][1] < ups[j][1]
	})
	for _, k := range ups {
		m.raise(now, k)
	}
}

// raise fires a contact-up transition: state, counters, recording tap,
// handler. All three contact sources (scan, plan, replay) funnel through
// here so a recorded run and its replay see identical side-effect order.
func (m *Medium) raise(now float64, k pairKey) {
	m.connected[k] = true
	m.ContactsSeen++
	if m.rec != nil {
		m.rec.Transitions = append(m.rec.Transitions, Transition{Time: now, A: k[0], B: k[1], Up: true})
	}
	if m.handler != nil {
		m.handler.ContactUp(now, m.byID[k[0]], m.byID[k[1]])
	}
}

// drop fires a contact-down transition, aborting any transfer on the pair.
func (m *Medium) drop(now float64, k pairKey) {
	delete(m.connected, k)
	m.abortPair(now, k)
	if m.rec != nil {
		m.rec.Transitions = append(m.rec.Transitions, Transition{Time: now, A: k[0], B: k[1], Up: false})
	}
	if m.handler != nil {
		m.handler.ContactDown(now, m.byID[k[0]], m.byID[k[1]])
	}
}

// proximityPairs returns the set of entity pairs within radio range at now,
// using a uniform hash grid with cell size = range so only the 3x3 cell
// neighbourhood needs checking.
func (m *Medium) proximityPairs(now float64) map[pairKey]bool {
	n := len(m.entities)
	pos := make([]geo.Point, n)
	for i, e := range m.entities {
		pos[i] = e.Position(now)
	}
	cell := m.cfg.Range
	type cellKey [2]int64
	grid := make(map[cellKey][]int, n)
	ck := func(p geo.Point) cellKey {
		return cellKey{int64(math.Floor(p.X / cell)), int64(math.Floor(p.Y / cell))}
	}
	for i, p := range pos {
		k := ck(p)
		grid[k] = append(grid[k], i)
	}
	r2 := m.cfg.Range * m.cfg.Range
	pairs := make(map[pairKey]bool)
	for i, p := range pos {
		base := ck(p)
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for _, j := range grid[cellKey{base[0] + dx, base[1] + dy}] {
					if j <= i {
						continue
					}
					if pos[i].Dist2(pos[j]) <= r2 {
						pairs[key(m.entities[i].ID(), m.entities[j].ID())] = true
					}
				}
			}
		}
	}
	return pairs
}

// StartTransfer begins moving size bytes from node `from` to node `to`.
// It returns false without side effects if the pair is not in contact or
// either radio is already busy. Otherwise the transfer completes after
// size·8/rate seconds (onDone), unless the contact breaks first (onAbort).
func (m *Medium) StartTransfer(now float64, from, to int, size units.Bytes, onDone, onAbort func(now float64)) bool {
	if from == to {
		panic("wireless: transfer to self")
	}
	if size <= 0 {
		panic(fmt.Sprintf("wireless: transfer of %d bytes", size))
	}
	if !m.Connected(from, to) || m.Busy(from) || m.Busy(to) {
		return false
	}
	t := &Transfer{
		From:    from,
		To:      to,
		Size:    size,
		Started: now,
		onDone:  onDone,
		onAbort: onAbort,
	}
	dur := m.cfg.Rate.TransferTime(size)
	t.handle = m.sched.After(dur, func(fireNow float64) {
		m.finish(t)
		m.TransfersCompleted++
		if t.onDone != nil {
			t.onDone(fireNow)
		}
	})
	m.busy[from] = t
	m.busy[to] = t
	m.TransfersStarted++
	return true
}

// finish clears busy state for a transfer's endpoints.
func (m *Medium) finish(t *Transfer) {
	if m.busy[t.From] == t {
		delete(m.busy, t.From)
	}
	if m.busy[t.To] == t {
		delete(m.busy, t.To)
	}
}

// abortPair aborts the transfer (if any) riding the broken contact (a, b).
func (m *Medium) abortPair(now float64, k pairKey) {
	t := m.busy[k[0]]
	if t == nil || m.busy[k[1]] != t {
		return // no shared transfer between exactly this pair
	}
	t.handle.Cancel()
	m.finish(t)
	m.TransfersAborted++
	if t.onAbort != nil {
		t.onAbort(now)
	}
}
