// Package wireless models the radio layer of the VDTN: disk-range contact
// detection between moving nodes and finite-rate message transfers over
// established contacts.
//
// The model is the one the paper's evaluation actually ran on (the ONE
// simulator's broadcast interface): two nodes are in contact iff their
// distance is at most the transmission range (30 m for the paper's IEEE
// 802.11b setup); a contact carries a fixed net data rate (6 Mbit/s); a
// node takes part in at most one transfer at a time; and a transfer whose
// contact breaks mid-flight is aborted and the partial data discarded.
//
// Contacts are detected by a periodic proximity scan (default every
// simulated second — the ONE's granularity class) over a uniform spatial
// hash grid with cell size equal to the radio range. The scan is
// incremental: positions, grid buckets and the in-range pair set persist
// across ticks, entities whose mobility model reports a static-until hint
// (parked relays, paused walkers) are skipped entirely, and a steady-state
// tick allocates nothing — so a scan costs O(movers + contacts), not
// O(nodes²) and not even O(nodes).
//
// Every contact transition — scanned, planned or replayed — updates a
// sorted per-node adjacency cache, so PeersOf is an O(1) lookup of an
// O(degree) slice instead of a walk over the global contact set.
//
// The scan can additionally be spread over a worker pool
// (Config.ScanWorkers): mover positions evaluate in parallel and pair
// discovery shards into per-worker sorted buffers joined by a
// deterministic k-way merge, so the emitted transitions — and therefore
// the trace bytes — are identical at every worker count. See
// docs/DETERMINISM.md ("Parallel scans stay byte-identical").
package wireless

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"

	"vdtn/internal/event"
	"vdtn/internal/geo"
	"vdtn/internal/units"
)

// Entity is a radio-equipped node tracked by the medium.
type Entity interface {
	// ID returns the node's unique non-negative id.
	ID() int
	// Position returns the node position at time now. The medium queries
	// positions with non-decreasing timestamps.
	Position(now float64) geo.Point
}

// ContactHandler receives contact lifecycle notifications. ContactUp and
// ContactDown are invoked once per (unordered) pair transition, with
// a.ID() < b.ID().
type ContactHandler interface {
	ContactUp(now float64, a, b Entity)
	ContactDown(now float64, a, b Entity)
}

// Config parameterizes the medium.
type Config struct {
	// Range is the radio transmission range in metres (> 0).
	Range float64
	// Rate is the contact data rate (> 0).
	Rate units.BitRate
	// ScanInterval is the proximity-scan period in seconds (> 0).
	ScanInterval float64
	// ScanWorkers is the number of goroutines the proximity scan fans
	// mobility evaluation and pair discovery out over. 0 and 1 run the
	// scan inline on the event loop; values >= 2 enable the sharded tick
	// pipeline. Contact transitions are byte-identical for every value —
	// worker count is a throughput knob, never part of the determinism
	// key (see docs/DETERMINISM.md). A medium that has scanned with
	// ScanWorkers >= 2 owns a worker pool; Stop releases it.
	ScanWorkers int
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	switch {
	case c.Range <= 0:
		return fmt.Errorf("wireless: non-positive range %v", c.Range)
	case c.Rate <= 0:
		return fmt.Errorf("wireless: non-positive rate %v", float64(c.Rate))
	case c.ScanInterval <= 0:
		return fmt.Errorf("wireless: non-positive scan interval %v", c.ScanInterval)
	case c.ScanWorkers < 0:
		return fmt.Errorf("wireless: negative scan workers %d", c.ScanWorkers)
	}
	return nil
}

// Transfer is an in-flight message transfer between two connected nodes.
type Transfer struct {
	From, To int
	Size     units.Bytes
	Started  float64

	handle  *event.Handle
	onDone  func(now float64)
	onAbort func(now float64)
}

type pairKey [2]int

func key(a, b int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Medium owns contact state and in-flight transfers.
// The zero value is not usable; use NewMedium.
type Medium struct {
	sched    *event.Scheduler
	cfg      Config
	entities []Entity
	byID     map[int]Entity
	handler  ContactHandler

	connected map[pairKey]bool
	idxOf     map[int]int32 // entity id -> index into entities/adj
	adj       [][]int       // entity index -> sorted peer ids, updated on every transition
	busy      map[int]*Transfer

	sc       scanState // live-scan working set, reused across ticks
	pool     *scanPool // parallel-scan workers, lazily built, nil when serial
	stopScan func()
	planned  bool

	rec           *Recording // transition tap, nil when not recording
	replayCur     TransitionCursor
	replayNext    Transition
	replayHas     bool
	replayChecked bool // node ids pre-validated at StartReplay; skip per-tick checks

	// Counters for tests and reports.
	ContactsSeen       uint64 // ContactUp events
	TransfersStarted   uint64
	TransfersCompleted uint64
	TransfersAborted   uint64
}

// NewMedium returns a medium scheduling on sched. Panics on invalid config.
func NewMedium(sched *event.Scheduler, cfg Config) *Medium {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &Medium{
		sched:     sched,
		cfg:       cfg,
		byID:      make(map[int]Entity),
		connected: make(map[pairKey]bool),
		idxOf:     make(map[int]int32),
		busy:      make(map[int]*Transfer),
	}
}

// Add registers an entity. Panics on duplicate or negative ids, which are
// always scenario-assembly bugs.
func (m *Medium) Add(e Entity) {
	id := e.ID()
	if id < 0 {
		panic(fmt.Sprintf("wireless: negative entity id %d", id))
	}
	if id > math.MaxUint32 {
		// The scan packs two ids into one uint64 pair key.
		panic(fmt.Sprintf("wireless: entity id %d exceeds 32 bits", id))
	}
	if _, dup := m.byID[id]; dup {
		panic(fmt.Sprintf("wireless: duplicate entity id %d", id))
	}
	m.idxOf[id] = int32(len(m.entities))
	m.entities = append(m.entities, e)
	m.adj = append(m.adj, nil)
	m.byID[id] = e
}

// SetHandler installs the contact lifecycle handler. Must be called before
// Start.
func (m *Medium) SetHandler(h ContactHandler) { m.handler = h }

// Start begins periodic proximity scanning at time `from`.
func (m *Medium) Start(from float64) {
	if m.stopScan != nil || m.planned {
		panic("wireless: Start called twice")
	}
	m.stopScan = m.sched.Every(from, m.cfg.ScanInterval, m.scan)
}

// ContactWindow is one scheduled contact for plan-driven operation.
type ContactWindow struct {
	A, B       int
	Start, End float64
}

// planEvent is one half of a contact window: a raise at its start or a
// drop at its end.
type planEvent struct {
	t  float64
	up bool
	k  pairKey
}

// StartPlan drives contacts from an explicit schedule instead of proximity
// scanning: each window raises the contact at Start and breaks it (aborting
// any transfer riding it) at End. Entity positions are ignored in this
// mode. Windows must reference registered entities and be pre-validated
// (internal/contactplan does both); StartPlan panics on unknown ids.
// Start and StartPlan are mutually exclusive.
//
// Transitions that fall on the same instant honor the scan's ordering
// contract regardless of the order windows were given in: all downs fire
// first (freeing the endpoints' radios), then all ups, each ascending by
// node pair. One scheduler event is dispatched per distinct instant.
func (m *Medium) StartPlan(windows []ContactWindow) {
	if m.stopScan != nil || m.planned {
		panic("wireless: StartPlan after Start")
	}
	m.planned = true
	events := make([]planEvent, 0, 2*len(windows))
	for _, win := range windows {
		if _, ok := m.byID[win.A]; !ok {
			panic(fmt.Sprintf("wireless: plan references unknown node %d", win.A))
		}
		if _, ok := m.byID[win.B]; !ok {
			panic(fmt.Sprintf("wireless: plan references unknown node %d", win.B))
		}
		k := key(win.A, win.B)
		events = append(events,
			planEvent{t: win.Start, up: true, k: k},
			planEvent{t: win.End, up: false, k: k})
	}
	slices.SortFunc(events, func(a, b planEvent) int {
		if a.t != b.t {
			return cmp.Compare(a.t, b.t)
		}
		if a.up != b.up {
			if a.up {
				return 1 // downs before ups within an instant
			}
			return -1
		}
		return comparePairs(a.k, b.k)
	})
	for start := 0; start < len(events); {
		end := start
		for end < len(events) && events[end].t == events[start].t {
			end++
		}
		batch := events[start:end]
		m.sched.At(batch[0].t, func(now float64) {
			for _, ev := range batch {
				switch {
				case ev.up && !m.connected[ev.k]:
					m.raise(now, ev.k)
				case !ev.up && m.connected[ev.k]:
					// The guards keep overlapping windows (merged
					// upstream, but this is a public API) idempotent.
					m.drop(now, ev.k)
				}
			}
		})
		start = end
	}
}

// RecordTo taps every subsequent contact transition into rec, stamping the
// medium's scan interval on it. Install the tap before Start (or StartPlan /
// StartReplay). A trace recorded from a scan- or replay-driven run drives a
// bit-identical re-run via StartReplay; a trace recorded from StartPlan may
// hold off-tick transition times, which replay quantizes to the next scan
// tick. Recording costs one slice append per transition.
func (m *Medium) RecordTo(rec *Recording) {
	if rec == nil {
		panic("wireless: RecordTo(nil)")
	}
	if m.stopScan != nil || m.planned {
		panic("wireless: RecordTo after Start")
	}
	rec.ScanInterval = m.cfg.ScanInterval
	m.rec = rec
}

// StartReplay drives contacts from a recorded transition trace instead of
// proximity scanning. It re-runs the recording through the same periodic
// tick loop the live scan uses — each tick applies the recorded transitions
// due at or before it, downs and ups in recorded order — so a replayed run
// schedules exactly the same events in exactly the same order as the live
// run that produced the recording: results are bit-identical. Entity
// positions are never queried.
//
// src is either an in-memory *Recording or a zero-copy *RecordingView
// (any ReplaySource); the medium takes one cursor from it, so any number
// of replaying media may share one source. The source's scan interval must
// equal the medium's, and every referenced node must be registered;
// violations panic as scenario-assembly bugs — eagerly for an in-memory
// recording, at the offending tick for a streamed source (a view's node
// range is pre-checked via MaxNode by the sim layer). Start, StartPlan and
// StartReplay are mutually exclusive.
func (m *Medium) StartReplay(from float64, src ReplaySource) {
	if m.stopScan != nil || m.planned {
		panic("wireless: StartReplay after Start")
	}
	if scan := src.Meta().ScanInterval; scan != m.cfg.ScanInterval {
		panic(fmt.Sprintf("wireless: recording scan interval %v, medium %v",
			scan, m.cfg.ScanInterval))
	}
	if rec, ok := src.(*Recording); ok {
		// Materialized traces are cheap to pre-check, preserving the
		// fail-at-assembly contract for direct library use — and sparing
		// the per-tick re-check in the replay hot loop.
		for _, tr := range rec.Transitions {
			m.checkReplayNodes(tr)
		}
		m.replayChecked = true
	}
	m.replayCur = src.Cursor()
	m.replayNext, m.replayHas = m.replayCur.Next()
	m.stopScan = m.sched.Every(from, m.cfg.ScanInterval, m.replayTick)
}

// checkReplayNodes panics if a replayed transition references an entity
// the medium does not have — a scenario-assembly bug.
func (m *Medium) checkReplayNodes(tr Transition) {
	if _, ok := m.byID[tr.A]; !ok {
		panic(fmt.Sprintf("wireless: recording references unknown node %d", tr.A))
	}
	if _, ok := m.byID[tr.B]; !ok {
		panic(fmt.Sprintf("wireless: recording references unknown node %d", tr.B))
	}
}

// replayTick applies the recorded transitions due at this scan tick. A
// recording captured from a live scan holds only tick-aligned timestamps,
// so each transition fires on the exact tick it was recorded at; off-tick
// timestamps (hand-edited traces) apply at the first tick at or after them.
func (m *Medium) replayTick(now float64) {
	for m.replayHas && m.replayNext.Time <= now {
		tr := m.replayNext
		m.replayNext, m.replayHas = m.replayCur.Next()
		if !m.replayChecked {
			m.checkReplayNodes(tr)
		}
		k := key(tr.A, tr.B)
		switch {
		case tr.Up && !m.connected[k]:
			m.raise(now, k)
		case !tr.Up && m.connected[k]:
			m.drop(now, k)
		}
	}
}

// Stop halts scanning (in-flight transfers keep running to completion) and
// releases the parallel-scan worker pool, if one was built. Stop is
// idempotent; a later Start rebuilds the pool lazily on its first tick.
func (m *Medium) Stop() {
	if m.stopScan != nil {
		m.stopScan()
		m.stopScan = nil
	}
	if m.pool != nil {
		m.pool.close()
		m.pool = nil
	}
}

// Connected reports whether nodes a and b are currently in contact.
func (m *Medium) Connected(a, b int) bool { return m.connected[key(a, b)] }

// Busy reports whether node id is currently part of a transfer.
func (m *Medium) Busy(id int) bool { return m.busy[id] != nil }

// Rate returns the configured contact data rate.
func (m *Medium) Rate() units.BitRate { return m.cfg.Rate }

// PeersOf returns the ids currently in contact with node id, in ascending
// order. The slice is the medium's incrementally-maintained adjacency
// cache: it is valid until the next contact transition and must not be
// modified or retained by the caller.
func (m *Medium) PeersOf(id int) []int {
	i, ok := m.idxOf[id]
	if !ok {
		return nil
	}
	return m.adj[i]
}

// insertPeer adds v to the sorted peer slice s, keeping it sorted.
func insertPeer(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s // already present (unreachable: raise guards on connected)
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removePeer deletes v from the sorted peer slice s, keeping capacity.
func removePeer(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i >= len(s) || s[i] != v {
		return s // not present (unreachable: drop guards on connected)
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// raise fires a contact-up transition: state, adjacency, counters,
// recording tap, handler. All three contact sources (scan, plan, replay)
// funnel through here so a recorded run and its replay see identical
// side-effect order — and so the adjacency cache is maintained uniformly.
func (m *Medium) raise(now float64, k pairKey) {
	m.connected[k] = true
	ia, ib := m.idxOf[k[0]], m.idxOf[k[1]]
	m.adj[ia] = insertPeer(m.adj[ia], k[1])
	m.adj[ib] = insertPeer(m.adj[ib], k[0])
	m.ContactsSeen++
	if m.rec != nil {
		m.rec.Transitions = append(m.rec.Transitions, Transition{Time: now, A: k[0], B: k[1], Up: true})
	}
	if m.handler != nil {
		m.handler.ContactUp(now, m.entities[ia], m.entities[ib])
	}
}

// drop fires a contact-down transition, aborting any transfer on the pair.
func (m *Medium) drop(now float64, k pairKey) {
	delete(m.connected, k)
	ia, ib := m.idxOf[k[0]], m.idxOf[k[1]]
	m.adj[ia] = removePeer(m.adj[ia], k[1])
	m.adj[ib] = removePeer(m.adj[ib], k[0])
	m.abortPair(now, k)
	if m.rec != nil {
		m.rec.Transitions = append(m.rec.Transitions, Transition{Time: now, A: k[0], B: k[1], Up: false})
	}
	if m.handler != nil {
		m.handler.ContactDown(now, m.entities[ia], m.entities[ib])
	}
}

// CheckInvariants verifies the adjacency cache against the connected set:
// every peer slice must be strictly ascending, self-free, and mirror a
// live connected pair symmetrically, and the total degree must equal
// twice the connected-pair count (so no pair is missing from the cache).
// It exists for the equivalence suites and property tests; it is not
// called on any hot path.
func (m *Medium) CheckInvariants() error {
	degree := 0
	for idx, e := range m.entities {
		id := e.ID()
		peers := m.adj[idx]
		degree += len(peers)
		for i, p := range peers {
			if p == id {
				return fmt.Errorf("wireless: node %d adjacent to itself", id)
			}
			if i > 0 && peers[i-1] >= p {
				return fmt.Errorf("wireless: adjacency of %d not strictly ascending: %v", id, peers)
			}
			if !m.connected[key(id, p)] {
				return fmt.Errorf("wireless: adjacency (%d,%d) not in connected set", id, p)
			}
			back := m.adj[m.idxOf[p]]
			if j := sort.SearchInts(back, id); j >= len(back) || back[j] != id {
				return fmt.Errorf("wireless: adjacency (%d,%d) not symmetric", id, p)
			}
		}
	}
	if degree != 2*len(m.connected) {
		return fmt.Errorf("wireless: total degree %d, connected pairs %d", degree, len(m.connected))
	}
	return nil
}

// StartTransfer begins moving size bytes from node `from` to node `to`.
// It returns false without side effects if the pair is not in contact or
// either radio is already busy. Otherwise the transfer completes after
// size·8/rate seconds (onDone), unless the contact breaks first (onAbort).
func (m *Medium) StartTransfer(now float64, from, to int, size units.Bytes, onDone, onAbort func(now float64)) bool {
	if from == to {
		panic("wireless: transfer to self")
	}
	if size <= 0 {
		panic(fmt.Sprintf("wireless: transfer of %d bytes", size))
	}
	if !m.Connected(from, to) || m.Busy(from) || m.Busy(to) {
		return false
	}
	t := &Transfer{
		From:    from,
		To:      to,
		Size:    size,
		Started: now,
		onDone:  onDone,
		onAbort: onAbort,
	}
	dur := m.cfg.Rate.TransferTime(size)
	t.handle = m.sched.After(dur, func(fireNow float64) {
		m.finish(t)
		m.TransfersCompleted++
		if t.onDone != nil {
			t.onDone(fireNow)
		}
	})
	m.busy[from] = t
	m.busy[to] = t
	m.TransfersStarted++
	return true
}

// finish clears busy state for a transfer's endpoints.
func (m *Medium) finish(t *Transfer) {
	if m.busy[t.From] == t {
		delete(m.busy, t.From)
	}
	if m.busy[t.To] == t {
		delete(m.busy, t.To)
	}
}

// abortPair aborts the transfer (if any) riding the broken contact (a, b).
func (m *Medium) abortPair(now float64, k pairKey) {
	t := m.busy[k[0]]
	if t == nil || m.busy[k[1]] != t {
		return // no shared transfer between exactly this pair
	}
	t.handle.Cancel()
	m.finish(t)
	m.TransfersAborted++
	if t.onAbort != nil {
		t.onAbort(now)
	}
}
