package vdtn_test

import (
	"testing"

	"vdtn"
)

// These tests assert the paper's qualitative claims — the shapes of
// Figures 4-9 — on time-scaled runs of the actual experiment catalog.
// They are the repository's regression net: if a refactor silently breaks
// a protocol or policy, the claim orderings flip long before anyone reads
// EXPERIMENTS.md. They run multi-seed scaled scenarios (~a minute in
// total), so they are skipped under -short.

// claimCache shares one contact cache across all claim tests: every
// figure sweeps the same scenario at the same seeds, so the whole suite
// needs exactly two mobility simulations (one per seed). Replayed cells
// are bit-identical to live ones, so the claims are tested at full
// default-mode fidelity.
var claimCache = &vdtn.ContactCache{}

// claimOptions: two seeds at a quarter of the paper's horizon keeps the
// orderings stable while staying test-suite friendly.
func claimOptions() vdtn.ExperimentOptions {
	return vdtn.ExperimentOptions{Seeds: []uint64{1, 2}, Scale: 0.25, ContactCache: claimCache}
}

// runCatalog runs a catalog experiment and returns mean metric per
// (series name, x index).
func runCatalog(t *testing.T, id string) map[string][]float64 {
	t.Helper()
	exp, ok := vdtn.ExperimentByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	res, err := vdtn.RunExperimentE(exp, claimOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.DefaultTable()
	out := make(map[string][]float64)
	for _, s := range tbl.Series {
		means := make([]float64, len(s.Cells))
		for i, c := range s.Cells {
			means[i] = c.Summary.Mean
		}
		out[s.Name] = means
	}
	return out
}

// TestClaimPolicyOrderingEpidemic pins the paper's §III.A result: for
// Epidemic routing, FIFO-FIFO is worst and Lifetime best on both metrics,
// with Random-FIFO in between, at every TTL.
func TestClaimPolicyOrderingEpidemic(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical claim test")
	}
	delay := runCatalog(t, "fig4")
	prob := runCatalog(t, "fig5")
	for i := range delay["FIFO-FIFO"] {
		f, r, l := delay["FIFO-FIFO"][i], delay["Random-FIFO"][i], delay["LifetimeDESC-LifetimeASC"][i]
		if !(l < r && r < f) {
			t.Errorf("ttl point %d: delay ordering broken: lifetime %.1f, random %.1f, fifo %.1f", i, l, r, f)
		}
		pf, pr, pl := prob["FIFO-FIFO"][i], prob["Random-FIFO"][i], prob["LifetimeDESC-LifetimeASC"][i]
		if !(pl > pr && pr > pf) {
			t.Errorf("ttl point %d: delivery ordering broken: lifetime %.3f, random %.3f, fifo %.3f", i, pl, pr, pf)
		}
	}
}

// TestClaimPolicyOrderingSprayWait pins §III.B: the same ordering holds
// for binary Spray and Wait.
func TestClaimPolicyOrderingSprayWait(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical claim test")
	}
	delay := runCatalog(t, "fig6")
	prob := runCatalog(t, "fig7")
	for i := range delay["FIFO-FIFO"] {
		if l, f := delay["LifetimeDESC-LifetimeASC"][i], delay["FIFO-FIFO"][i]; l >= f {
			t.Errorf("ttl point %d: S&W lifetime delay %.1f not below FIFO %.1f", i, l, f)
		}
		if pl, pf := prob["LifetimeDESC-LifetimeASC"][i], prob["FIFO-FIFO"][i]; pl <= pf {
			t.Errorf("ttl point %d: S&W lifetime delivery %.3f not above FIFO %.3f", i, pl, pf)
		}
	}
}

// TestClaimDelayGainGrowsWithTTL pins the paper's observation that the
// Lifetime policy's delay advantage widens as TTL grows (6→29 minutes in
// the paper's Figure 4).
func TestClaimDelayGainGrowsWithTTL(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical claim test")
	}
	delay := runCatalog(t, "fig4")
	n := len(delay["FIFO-FIFO"])
	gainFirst := delay["FIFO-FIFO"][0] - delay["LifetimeDESC-LifetimeASC"][0]
	gainLast := delay["FIFO-FIFO"][n-1] - delay["LifetimeDESC-LifetimeASC"][n-1]
	if gainLast <= gainFirst {
		t.Errorf("delay gain did not grow with TTL: %.1f min at the low end, %.1f at the high end",
			gainFirst, gainLast)
	}
}

// TestClaimProtocolComparison pins §III.C: policy-equipped Spray and Wait
// beats MaxProp on delay at every TTL, and PRoPHET has the lowest
// delivery probability of the four protocols across the sweep.
func TestClaimProtocolComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical claim test")
	}
	prob := runCatalog(t, "fig8")
	delay := runCatalog(t, "fig9")
	for i := range prob["PRoPHET"] {
		p := prob["PRoPHET"][i]
		for _, other := range []string{"Epidemic", "SprayAndWait", "MaxProp"} {
			if p >= prob[other][i] {
				t.Errorf("ttl point %d: PRoPHET delivery %.3f not below %s %.3f", i, p, other, prob[other][i])
			}
		}
		if snw, mx := delay["SprayAndWait"][i], delay["MaxProp"][i]; snw >= mx {
			t.Errorf("ttl point %d: S&W delay %.1f not below MaxProp %.1f", i, snw, mx)
		}
	}
}
