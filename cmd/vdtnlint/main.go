// Command vdtnlint runs the repo's determinism & safety analyzers
// (internal/lint/...): detmaprange, detsource, detgo, ctxloop, lockorder.
//
// It speaks two protocols:
//
//   - As a vet tool, driven by the go command:
//
//     go vet -vettool=$(pwd)/bin/vdtnlint ./...
//
//     The go command probes the tool with -flags and -V=full, then invokes
//     it once per package with a JSON *.cfg file describing the unit
//     (sources, import map, export data) — the same contract
//     golang.org/x/tools/go/analysis/unitchecker implements. This mode
//     gets the build cache and per-package parallelism for free.
//
//   - Standalone, over package patterns:
//
//     vdtnlint ./...
//
//     resolves the patterns itself via `go list -export` and prints every
//     diagnostic with its analyzer name.
//
// Exit status is nonzero iff diagnostics were reported (or loading failed).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"vdtn/internal/lint"
	"vdtn/internal/lint/ctxloop"
	"vdtn/internal/lint/detgo"
	"vdtn/internal/lint/detmaprange"
	"vdtn/internal/lint/detsource"
	"vdtn/internal/lint/lockorder"
)

var analyzers = []*lint.Analyzer{
	detmaprange.Analyzer,
	detsource.Analyzer,
	detgo.Analyzer,
	ctxloop.Analyzer,
	lockorder.Analyzer,
}

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-flags" || a == "--flags":
			// The go command asks which flags the tool accepts so it can
			// validate user-supplied vet flags. vdtnlint takes none.
			fmt.Println("[]")
			return
		case strings.HasPrefix(a, "-V=") || a == "-V":
			printVersion()
			return
		case a == "help" || a == "-h" || a == "--help":
			usage()
			return
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(unitcheck(args[n-1]))
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standalone(patterns))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: vdtnlint [packages]\n       go vet -vettool=$(command -v vdtnlint) [packages]\n\nAnalyzers (see docs/DETERMINISM.md):\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// printVersion answers the go command's -V=full probe. The build cache
// needs a stable content identifier for the tool; hashing the executable
// gives one without requiring the binary to be stamped at link time.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:20]
			}
			f.Close()
		}
	}
	fmt.Printf("vdtnlint version devel buildID=%s\n", id)
}

// vetConfig is the JSON unit description the go command writes for vet
// tools (cmd/go/internal/work's "vet.cfg").
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdtnlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vdtnlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requests a facts file for every unit, dependencies
	// included, and caches it. These analyzers exchange no facts, so the
	// output is always empty — but it must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "vdtnlint: %v\n", err)
			return 1
		}
	}
	// Dependency units exist only to produce facts: nothing to analyze.
	if cfg.VetxOnly {
		return 0
	}
	unit, err := loadUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "vdtnlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := lint.Run(unit, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdtnlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", unit.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// loadUnit parses and type-checks the unit described by cfg, resolving
// imports through the export data files the go command already built.
func loadUnit(cfg *vetConfig) (*lint.Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files")
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := lint.NewTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

func standalone(patterns []string) int {
	units, err := lint.LoadPackages("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdtnlint: %v\n", err)
		return 1
	}
	found := 0
	for _, unit := range units {
		diags, err := lint.Run(unit, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnlint: %s: %v\n", unit.Pkg.Path(), err)
			return 1
		}
		for _, d := range diags {
			fmt.Printf("%s: %s [%s]\n", unit.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		found += len(diags)
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "vdtnlint: %d finding(s)\n", found)
		return 2
	}
	return 0
}
