// Command traceview analyzes a recorded simulation trace offline:
// contact statistics, transfer outcomes, message fates, delivery paths.
//
// Usage:
//
//	vdtnsim -ttl 120 -trace run.tsv        # record
//	traceview run.tsv                      # analyze later
//	traceview -horizon 43200 -paths run.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"vdtn/internal/bundle"
	"vdtn/internal/reports"
	"vdtn/internal/trace"
)

func main() {
	var (
		horizon = flag.Float64("horizon", 0, "run end time in seconds (0 = last event time)")
		paths   = flag.Bool("paths", false, "print the delivery path of every delivered message")
		topK    = flag.Int("top", 5, "how many busiest contact pairs to list")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [flags] <trace.tsv>")
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		os.Exit(1)
	}
	events, err := trace.ParseTSV(string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "traceview: trace is empty")
		os.Exit(1)
	}
	end := *horizon
	if end == 0 {
		end = events[len(events)-1].Time
	}

	a := reports.Analyze(events, end)
	fmt.Printf("%d events over %.0f s\n\n%s", len(events), end, a)

	if *topK > 0 {
		fmt.Printf("\nbusiest contact pairs:\n")
		for _, p := range reports.TopPairs(events, *topK) {
			fmt.Printf("  %d <-> %d\n", p[0], p[1])
		}
	}

	if *paths {
		fmt.Printf("\ndelivery paths:\n")
		// Walk delivered ids in creation order via the event stream.
		seen := map[bundle.ID]bool{}
		for _, ev := range events {
			if ev.Kind != trace.Delivered || seen[ev.Msg] {
				continue
			}
			seen[ev.Msg] = true
			fmt.Printf("  %v: %v\n", ev.Msg, a.DeliveryPath(ev.Msg))
		}
	}
}
