// Command vdtnd is the sweep-as-a-service daemon: it runs experiment
// sweeps as durable, observable, cancellable jobs behind an HTTP/JSON
// API, surviving restarts — and kill -9 — with byte-identical results.
//
// Daemon usage:
//
//	vdtnd -data-dir /var/lib/vdtnd &
//	curl -d @examples/sweeps/grid.json localhost:8480/v1/jobs
//	curl localhost:8480/v1/jobs/j000001
//	curl -N localhost:8480/v1/jobs/j000001/events
//	curl localhost:8480/v1/jobs/j000001/results
//	curl -X DELETE localhost:8480/v1/jobs/j000001
//
// Jobs persist under -data-dir (spec, meta, results stream); on restart
// every unfinished job is re-admitted and resumed from the complete-cell
// prefix of its results stream, so the finished artifact is identical no
// matter how many times the process died. See docs/SERVICE.md for the
// API reference and resume semantics.
//
// The same binary doubles as the client: invoked as "vdtnctl" (or
// "vdtnd ctl ..."), it speaks the API from the command line —
//
//	vdtnctl submit -spec grid.json -seeds 4
//	vdtnctl list
//	vdtnctl status j000001
//	vdtnctl events j000001
//	vdtnctl wait j000001
//	vdtnctl results j000001 > results.jsonl
//	vdtnctl cancel j000001
//
// -addr picks the daemon's listen address (client side: the daemon to
// talk to). -addr-file, on the daemon, writes the actually bound address
// to a file — with -addr 127.0.0.1:0 that is how scripts and tests learn
// the ephemeral port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"vdtn/internal/service"
)

func main() { os.Exit(run(os.Args)) }

// run dispatches between daemon and client mode: the binary acts as the
// client when named vdtnctl (a hardlink/copy) or when the first argument
// is "ctl".
func run(args []string) int {
	if filepath.Base(args[0]) == "vdtnctl" {
		return runCtl(args[1:])
	}
	if len(args) > 1 && args[1] == "ctl" {
		return runCtl(args[2:])
	}
	return runDaemon(args[1:])
}

func runDaemon(args []string) int {
	fs := flag.NewFlagSet("vdtnd", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8480", "listen address (host:port; port 0 picks an ephemeral port)")
		dataDir  = fs.String("data-dir", "", "durable job store directory (required)")
		addrFile = fs.String("addr-file", "", "write the bound listen address to this file once serving (how scripts learn an ephemeral port)")
		progress = fs.Bool("progress", false, "echo each running sweep as a live cell counter on stderr")
	)
	fs.Parse(args)
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "vdtnd: -data-dir is required (the job store must survive restarts)")
		return 2
	}

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	cfg := service.Config{DataDir: *dataDir, Logf: logf}
	if *progress {
		cfg.Progress = os.Stderr
	}
	mgr, err := service.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdtnd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		mgr.Close()
		fmt.Fprintf(os.Stderr, "vdtnd: %v\n", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			mgr.Close()
			fmt.Fprintf(os.Stderr, "vdtnd: %v\n", err)
			return 1
		}
	}
	logf("vdtnd: serving on %s, data dir %s", ln.Addr(), *dataDir)

	srv := &http.Server{Handler: service.NewHandler(mgr)}
	errCh := make(chan error, 1)
	// The HTTP accept loop; it ends via srv.Shutdown below, and the
	// Serve error (http.ErrServerClosed on a clean shutdown) joins the
	// main goroutine through errCh.
	go func() { errCh <- srv.Serve(ln) }() //vdtnlint:detgo accept loop joined via errCh; Shutdown bounds its lifetime

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	var serveErr error
	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, then stop the scheduler —
		// the running job stays "running" on disk and resumes on the
		// next start.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(shutdownCtx)
		cancel()
		<-errCh
	case serveErr = <-errCh:
	}
	mgr.Close()
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "vdtnd: %v\n", serveErr)
		return 1
	}
	logf("vdtnd: stopped")
	return 0
}
