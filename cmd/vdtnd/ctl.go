package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"vdtn/internal/service"
)

// runCtl is the client mode: vdtnctl <subcommand> [flags] [args].
func runCtl(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, ctlUsage)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		return ctlSubmit(rest)
	case "list":
		return ctlList(rest)
	case "status":
		return ctlJSON(rest, "status", func(addr, id string) (*http.Response, error) {
			return http.Get(apiURL(addr, "/v1/jobs/"+id))
		})
	case "cancel":
		return ctlJSON(rest, "cancel", func(addr, id string) (*http.Response, error) {
			req, err := http.NewRequest(http.MethodDelete, apiURL(addr, "/v1/jobs/"+id), nil)
			if err != nil {
				return nil, err
			}
			return http.DefaultClient.Do(req)
		})
	case "events":
		return ctlEvents(rest)
	case "results":
		return ctlResults(rest)
	case "wait":
		return ctlWait(rest)
	case "-h", "--help", "help":
		fmt.Println(ctlUsage)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "vdtnctl: unknown command %q\n%s\n", cmd, ctlUsage)
		return 2
	}
}

const ctlUsage = `usage: vdtnctl <command> [-addr host:port] [args]

commands:
  submit -spec file [-seeds n] [-scale f] [-metric m] [-workers n]
         [-scan-workers n] [-total-parallelism n] [-cache-dir dir]
                       submit a sweep job; prints its meta
  list                 list all jobs
  status <job>         one job's state and progress
  events <job>         stream the job's live events (NDJSON)
  results <job>        print the job's results.jsonl to stdout
  wait <job>           poll until the job is terminal; exit 0 only for "done"
  cancel <job>         cancel a queued or running job`

// addrFlag registers the shared -addr flag.
func addrFlag(fs *flag.FlagSet) *string {
	return fs.String("addr", "127.0.0.1:8480", "vdtnd address (host:port)")
}

func apiURL(addr, path string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr + path
}

// fail prints an error and returns the exit code.
func ctlFail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "vdtnctl: "+format+"\n", args...)
	return 1
}

// decodeError surfaces the server's {"error": ...} body.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s", resp.Status)
}

// printBody pretty-prints a JSON response body.
func printBody(resp *http.Response) int {
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return ctlFail("%v", err)
	}
	return 0
}

func ctlSubmit(args []string) int {
	fs := flag.NewFlagSet("vdtnctl submit", flag.ExitOnError)
	addr := addrFlag(fs)
	var (
		specPath = fs.String("spec", "", "sweep spec file (required)")
		seeds    = fs.Int("seeds", 0, "replication seeds 1..n (0 = the spec's own)")
		scale    = fs.Float64("scale", 0, "duration scale (0 = the spec's own)")
		metric   = fs.String("metric", "", "metric override")
		workers  = fs.Int("workers", 0, "sweep workers (0 = GOMAXPROCS)")
		scanW    = fs.Int("scan-workers", 0, "per-cell scan workers (0 = serial)")
		totalPar = fs.Int("total-parallelism", 0, "shared goroutine budget (0 = GOMAXPROCS)")
		cacheDir = fs.String("cache-dir", "", "persist contact traces in this directory")
	)
	fs.Parse(args)
	if *specPath == "" {
		return ctlFail("submit needs -spec")
	}
	spec, err := os.ReadFile(*specPath)
	if err != nil {
		return ctlFail("%v", err)
	}
	opts := service.Options{
		Scale: *scale, Workers: *workers, ScanWorkers: *scanW,
		TotalParallelism: *totalPar, Metric: *metric, CacheDir: *cacheDir,
	}
	for i := 0; i < *seeds; i++ {
		opts.Seeds = append(opts.Seeds, uint64(i+1))
	}
	body, err := json.Marshal(struct {
		Spec    json.RawMessage `json:"spec"`
		Options service.Options `json:"options"`
	}{Spec: spec, Options: opts})
	if err != nil {
		return ctlFail("%v", err)
	}
	resp, err := http.Post(apiURL(*addr, "/v1/jobs"), "application/json", strings.NewReader(string(body)))
	if err != nil {
		return ctlFail("%v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		return ctlFail("%v", decodeError(resp))
	}
	return printBody(resp)
}

func ctlList(args []string) int {
	fs := flag.NewFlagSet("vdtnctl list", flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	resp, err := http.Get(apiURL(*addr, "/v1/jobs"))
	if err != nil {
		return ctlFail("%v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return ctlFail("%v", decodeError(resp))
	}
	defer resp.Body.Close()
	var body struct {
		Jobs []service.Meta `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return ctlFail("%v", err)
	}
	for _, j := range body.Jobs {
		fmt.Printf("%-10s %-10s %-16s %d/%d cells\n", j.ID, j.State, j.Experiment, j.Done, j.Cells)
	}
	return 0
}

// ctlJSON runs a one-job request (status, cancel) and prints the body.
func ctlJSON(args []string, name string, do func(addr, id string) (*http.Response, error)) int {
	fs := flag.NewFlagSet("vdtnctl "+name, flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return ctlFail("%s needs exactly one job ID", name)
	}
	resp, err := do(*addr, fs.Arg(0))
	if err != nil {
		return ctlFail("%v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return ctlFail("%v", decodeError(resp))
	}
	return printBody(resp)
}

func ctlEvents(args []string) int {
	fs := flag.NewFlagSet("vdtnctl events", flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return ctlFail("events needs exactly one job ID")
	}
	resp, err := http.Get(apiURL(*addr, "/v1/jobs/"+fs.Arg(0)+"/events"))
	if err != nil {
		return ctlFail("%v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return ctlFail("%v", decodeError(resp))
	}
	defer resp.Body.Close()
	// Line-buffered copy so each event prints as it arrives.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	if err := sc.Err(); err != nil {
		return ctlFail("%v", err)
	}
	return 0
}

func ctlResults(args []string) int {
	fs := flag.NewFlagSet("vdtnctl results", flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return ctlFail("results needs exactly one job ID")
	}
	resp, err := http.Get(apiURL(*addr, "/v1/jobs/"+fs.Arg(0)+"/results"))
	if err != nil {
		return ctlFail("%v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return ctlFail("%v", decodeError(resp))
	}
	return printBody(resp)
}

func ctlWait(args []string) int {
	fs := flag.NewFlagSet("vdtnctl wait", flag.ExitOnError)
	addr := addrFlag(fs)
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return ctlFail("wait needs exactly one job ID")
	}
	id := fs.Arg(0)
	for {
		resp, err := http.Get(apiURL(*addr, "/v1/jobs/"+id))
		if err != nil {
			return ctlFail("%v", err)
		}
		if resp.StatusCode != http.StatusOK {
			return ctlFail("%v", decodeError(resp))
		}
		var meta service.Meta
		err = json.NewDecoder(resp.Body).Decode(&meta)
		resp.Body.Close()
		if err != nil {
			return ctlFail("%v", err)
		}
		if meta.State.Terminal() {
			fmt.Printf("%s %s %d/%d cells\n", meta.ID, meta.State, meta.Done, meta.Cells)
			if meta.State != service.StateDone {
				return 1
			}
			return 0
		}
		time.Sleep(*interval)
	}
}
