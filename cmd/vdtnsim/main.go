// Command vdtnsim runs a single VDTN scenario and prints its metrics.
//
// Usage:
//
//	vdtnsim [flags]
//
// With no flags it runs the paper's default scenario (Epidemic FIFO-FIFO,
// 60-minute TTL, 12 simulated hours). Examples:
//
//	vdtnsim -protocol spraywait -policy lifetime -ttl 120
//	vdtnsim -protocol maxprop -ttl 180 -seed 7
//	vdtnsim -vehicles 80 -relays 10 -rate 2 -duration 6
//	vdtnsim -record-contacts run.contacts         # capture the contact trace
//	vdtnsim -replay-contacts run.contacts -ttl 90 # re-run it, bit-identically
//	vdtnsim -contacts-info run.contacts           # inspect a recorded trace
//	vdtnsim -record-contacts run.contactsb        # binary trace (CRC-checked)
//	vdtnsim -replay-contacts run.contactsb -mmap  # zero-copy mapped replay
//
// Contact traces exist in two formats: the inspectable text form and the
// integrity-checked binary codec (magic + CRC32, several times faster to
// load). Reads sniff the format automatically; -record-contacts writes
// binary when the path ends in .contactsb (override with
// -contacts-format). A binary trace damaged anywhere — truncation, bit
// rot, torn copy — is rejected, never replayed as a shorter run. Text
// traces are checked via their "end <count>" trailer, which catches
// mid-line truncation and count mismatches; a file cut exactly at a line
// boundary is indistinguishable from a pre-v2 legacy trace and loads with
// a warning, so prefer the binary format when integrity matters.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vdtn"
	"vdtn/internal/reports"
	"vdtn/internal/scenario"
	"vdtn/internal/stats"
	"vdtn/internal/trace"
	"vdtn/internal/units"
	"vdtn/internal/wireless"
)

// readRecordingFile loads a contact trace in either format, sniffing by
// magic. Legacy text files without the end trailer still load, with a
// warning that their truncation cannot be detected.
func readRecordingFile(path string) (*vdtn.ContactRecording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return wireless.DecodeRecordingLegacy(data, func(msg string) {
		fmt.Fprintf(os.Stderr, "vdtnsim: %s: %s\n", path, msg)
	})
}

// encodeRecording renders rec for path under the -contacts-format policy:
// "binary", "text", or "auto" (binary iff path ends in .contactsb).
func encodeRecording(rec *vdtn.ContactRecording, path, format string) ([]byte, error) {
	switch format {
	case "binary":
	case "text":
		return []byte(rec.Format()), nil
	case "auto":
		if !strings.HasSuffix(path, ".contactsb") {
			return []byte(rec.Format()), nil
		}
	default:
		return nil, fmt.Errorf("unknown -contacts-format %q (want auto|text|binary)", format)
	}
	return vdtn.EncodeContactRecordingBinary(rec), nil
}

var protocols = map[string]vdtn.ProtocolKind{
	"epidemic":         vdtn.ProtoEpidemic,
	"spraywait":        vdtn.ProtoSprayAndWait,
	"spraywaitvanilla": vdtn.ProtoSprayAndWaitVanilla,
	"maxprop":          vdtn.ProtoMaxProp,
	"prophet":          vdtn.ProtoPRoPHET,
	"direct":           vdtn.ProtoDirectDelivery,
	"firstcontact":     vdtn.ProtoFirstContact,
}

var policies = map[string]vdtn.PolicyKind{
	"fifo":      vdtn.PolicyFIFOFIFO,
	"random":    vdtn.PolicyRandomFIFO,
	"lifetime":  vdtn.PolicyLifetime,
	"size":      vdtn.PolicySize,
	"hopmofo":   vdtn.PolicyHopMOFO,
	"oldestage": vdtn.PolicyFIFOOldestAge,
}

func keys[V any](m map[string]V) string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	// Sorted for stable help output.
	for i := 0; i < len(ks); i++ {
		for j := i + 1; j < len(ks); j++ {
			if ks[j] < ks[i] {
				ks[i], ks[j] = ks[j], ks[i]
			}
		}
	}
	return strings.Join(ks, "|")
}

func main() {
	var (
		protoName = flag.String("protocol", "epidemic", "routing protocol: "+keys(protocols))
		polName   = flag.String("policy", "fifo", "scheduling-dropping policy: "+keys(policies))
		ttlMin    = flag.Float64("ttl", 60, "message TTL in minutes")
		durationH = flag.Float64("duration", 12, "simulated duration in hours")
		seed      = flag.Uint64("seed", 1, "master random seed")
		vehicles  = flag.Int("vehicles", 40, "number of vehicles")
		relays    = flag.Int("relays", 5, "number of stationary relay nodes")
		vbufMB    = flag.Float64("buf", 100, "vehicle buffer size in MB")
		rbufMB    = flag.Float64("relaybuf", 500, "relay buffer size in MB")
		rateMbit  = flag.Float64("rate", 6, "link data rate in Mbit/s")
		rangeM    = flag.Float64("range", 30, "radio range in metres")
		copies    = flag.Int("copies", 12, "Spray and Wait copy budget N")
		warmupMin = flag.Float64("warmup", 0, "exclude messages created before this many minutes")
		scanWork  = flag.Int("scan-workers", 0, "worker goroutines for the contact scan (0 or 1 = serial; traces are byte-identical at any setting)")
		contacts  = flag.String("contacts", "", "contact-plan file (\"start end a b\" lines); replaces mobility")
		recordTo  = flag.String("record-contacts", "", "run live and write the contact trace to this file for later -replay-contacts")
		recFmt    = flag.String("contacts-format", "auto", "trace format for -record-contacts: auto (binary iff the path ends in .contactsb), text, or binary")
		replayOf  = flag.String("replay-contacts", "", "replay a recorded contact trace instead of simulating mobility (scenario flags must match the recording run)")
		mmapTrace = flag.Bool("mmap", false, "with -replay-contacts and a binary trace: replay a zero-copy memory-mapped view instead of decoding the trace into memory")
		inspect   = flag.String("contacts-info", "", "print a summary of a recorded contact trace and exit")
		confFile  = flag.String("config", "", "load the scenario from a JSON file (other flags still override)")
		dumpConf  = flag.Bool("dump-config", false, "print the effective scenario as JSON and exit")
		traceFile = flag.String("trace", "", "write the full event trace as TSV to this file")
		analyze   = flag.Bool("analyze", false, "print offline trace analysis (contacts, paths, fates)")
		verbose   = flag.Bool("v", false, "also print scenario parameters")
	)
	flag.Parse()

	proto, ok := protocols[strings.ToLower(*protoName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "vdtnsim: unknown protocol %q (want %s)\n", *protoName, keys(protocols))
		os.Exit(2)
	}
	pol, ok := policies[strings.ToLower(*polName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "vdtnsim: unknown policy %q (want %s)\n", *polName, keys(policies))
		os.Exit(2)
	}

	cfg := vdtn.PaperConfig(*ttlMin, proto, pol, *seed)
	if *confFile != "" {
		data, err := os.ReadFile(*confFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		cfg, err = scenario.Load(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
	}
	// Explicit flags override the file.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *confFile == "" || set["protocol"] {
		cfg.Protocol = proto
	}
	if *confFile == "" || set["policy"] {
		cfg.Policy = pol
	}
	if *confFile == "" || set["ttl"] {
		cfg.TTL = units.Minutes(*ttlMin)
	}
	if *confFile == "" || set["seed"] {
		cfg.Seed = *seed
	}
	if *confFile == "" || set["duration"] {
		cfg.Duration = units.Hours(*durationH)
	}
	if *confFile == "" || set["vehicles"] {
		cfg.Vehicles = *vehicles
	}
	if *confFile == "" || set["relays"] {
		cfg.Relays = *relays
	}
	if *confFile == "" || set["buf"] {
		cfg.VehicleBuffer = units.MB(*vbufMB)
	}
	if *confFile == "" || set["relaybuf"] {
		cfg.RelayBuffer = units.MB(*rbufMB)
	}
	if *confFile == "" || set["rate"] {
		cfg.Rate = units.Mbit(*rateMbit)
	}
	if *confFile == "" || set["range"] {
		cfg.Range = *rangeM
	}
	if *confFile == "" || set["copies"] {
		cfg.SprayCopies = *copies
	}
	if *confFile == "" || set["warmup"] {
		cfg.Warmup = units.Minutes(*warmupMin)
	}
	// Scenario files never carry ScanWorkers — it is a host throughput
	// knob, not part of the scenario, and has no effect on the trace.
	cfg.ScanWorkers = *scanWork

	if *dumpConf {
		data, err := scenario.Save("vdtnsim", cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}

	if *inspect != "" {
		rec, err := readRecordingFile(*inspect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		plan, err := vdtn.RecordingPlan(rec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: contact recording, scan every %gs over %s\n",
			*inspect, rec.ScanInterval, units.FormatDuration(rec.Duration))
		fmt.Printf("transitions  %6d\n%s\n", len(rec.Transitions), plan.Summarize())
		return
	}

	if *recordTo != "" && *replayOf != "" {
		fmt.Fprintln(os.Stderr, "vdtnsim: -record-contacts and -replay-contacts are mutually exclusive")
		os.Exit(2)
	}
	var recording *vdtn.ContactRecording
	switch {
	case *recordTo != "":
		recording = &vdtn.ContactRecording{}
		cfg.ContactSource = vdtn.ContactRecord
		cfg.Recording = recording
	case *replayOf != "" && *mmapTrace:
		view, err := vdtn.OpenContactRecordingView(*replayOf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v (only binary .contactsb traces can be mapped; drop -mmap for text)\n", err)
			os.Exit(1)
		}
		defer view.Close()
		cfg.ContactSource = vdtn.ContactReplay
		cfg.ReplaySource = view
		// Follow the trace's horizon unless the user chose one — via the
		// -duration flag or a -config file (a chosen duration may shorten
		// the replay, never extend it).
		if !set["duration"] && *confFile == "" {
			cfg.Duration = view.Meta().Duration
		}
	case *replayOf != "":
		var err error
		recording, err = readRecordingFile(*replayOf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		cfg.ContactSource = vdtn.ContactReplay
		cfg.Recording = recording
		// Follow the recording's horizon unless the user chose one — via
		// the -duration flag or a -config file (a chosen duration may
		// shorten the replay, never extend it).
		if !set["duration"] && *confFile == "" {
			cfg.Duration = recording.Duration
		}
	}

	if *contacts != "" {
		data, err := os.ReadFile(*contacts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		plan, err := vdtn.ParseContactPlan(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		cfg.Plan = plan
		if cfg.Vehicles+cfg.Relays <= plan.MaxNode() {
			cfg.Vehicles = plan.MaxNode() + 1
			cfg.Relays = 0
		}
	}

	var lg trace.Log
	var tw *trace.Writer
	var traceOut *os.File
	flushTrace := func() {}
	switch {
	case *traceFile != "":
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		traceOut = f
		buffered := bufio.NewWriter(f)
		flushTrace = func() {
			buffered.Flush()
			f.Close()
		}
		defer flushTrace()
		tw = trace.NewWriter(buffered)
		if *analyze {
			cfg.Trace = func(ev trace.Event) {
				tw.Emit(ev)
				lg.Append(ev)
			}
		} else {
			cfg.Trace = tw.Emit
		}
	case *analyze:
		cfg.Trace = lg.Append
	}

	if *verbose {
		fmt.Printf("scenario: %s\n", cfg.Label())
		fmt.Printf("  %d vehicles (%v), %d relays (%v)\n",
			cfg.Vehicles, cfg.VehicleBuffer, cfg.Relays, cfg.RelayBuffer)
		fmt.Printf("  radio %v at %.0f m, %s simulated\n",
			cfg.Rate, cfg.Range, units.FormatDuration(cfg.Duration))
	}

	// SIGINT/SIGTERM cancel the run cooperatively: the simulation stops at
	// its next event-loop checkpoint and the partial event trace (if any)
	// is still flushed before the non-zero exit.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	result, err := vdtn.RunContext(ctx, cfg)
	stopSignals()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
		if errors.Is(err, context.Canceled) {
			flushTrace()
			os.Exit(130)
		}
		os.Exit(1)
	}
	fmt.Printf("%s  (seed %d)\n", result.Label, result.Seed)
	fmt.Println(result.Report)
	fmt.Printf("contacts       %6d\ntransfers      %6d started, %d completed, %d aborted\n",
		result.Contacts, result.TransfersStarted, result.TransfersCompleted, result.TransfersAborted)
	fmt.Printf("mean occupancy %8.1f%%\n", 100*result.MeanBufferOccupancy)

	if *analyze {
		analysis := reports.Analyze(lg.Events(), cfg.Duration)
		fmt.Printf("\n--- trace analysis ---\n%s", analysis)
		fmt.Println("busiest pairs:")
		for _, p := range reports.TopPairs(lg.Events(), 5) {
			fmt.Printf("  %d <-> %d\n", p[0], p[1])
		}
		if delays := analysis.Delays(); len(delays) > 0 {
			maxD := delays[0]
			for _, d := range delays {
				if d > maxD {
					maxD = d
				}
			}
			h := stats.NewHistogram(0, maxD+1, 12)
			h.AddAll(delays)
			fmt.Printf("\ndelivery delay distribution:\n%s", h.Render(40, units.FormatDuration))
		}
	}
	if tw != nil {
		if err := tw.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: trace write: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s\n", traceOut.Name())
	}
	if *recordTo != "" {
		data, err := encodeRecording(recording, *recordTo, strings.ToLower(*recFmt))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*recordTo, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vdtnsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("contact trace (%d transitions, %d bytes) written to %s\n",
			len(recording.Transitions), len(data), *recordTo)
	}
}
