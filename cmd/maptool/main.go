// Command maptool inspects and converts the road maps the simulator runs
// on.
//
// Usage:
//
//	maptool -map helsinki -stats          # the paper scenario's map
//	maptool -map grid:8x12x250 -stats     # synthetic grid
//	maptool -load city.wkt -stats         # your own WKT map
//	maptool -map helsinki -relays 5       # show relay placements
//	maptool -map helsinki -export > h.wkt # dump as WKT
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vdtn/internal/roadmap"
)

func main() {
	var (
		mapSpec = flag.String("map", "helsinki", `built-in map: "helsinki" or "grid:RxCxS" (rows x cols x spacing m)`)
		load    = flag.String("load", "", "load a WKT map file instead of a built-in")
		stats   = flag.Bool("stats", false, "print map statistics")
		relays  = flag.Int("relays", 0, "print N relay site placements")
		export  = flag.Bool("export", false, "write the map as WKT to stdout")
	)
	flag.Parse()

	g, err := buildMap(*mapSpec, *load)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maptool: %v\n", err)
		os.Exit(1)
	}

	if !*stats && *relays == 0 && !*export {
		*stats = true // default action
	}

	if *stats {
		b := g.Bounds()
		fmt.Printf("vertices        %d\n", g.VertexCount())
		fmt.Printf("edges           %d\n", g.EdgeCount())
		fmt.Printf("extent          %.0f m x %.0f m\n", b.Width(), b.Height())
		fmt.Printf("total road      %.1f km\n", g.TotalRoadLength()/1000)
		crossroads := 0
		for v := 0; v < g.VertexCount(); v++ {
			if g.Degree(v) >= 3 {
				crossroads++
			}
		}
		fmt.Printf("crossroads      %d (degree >= 3)\n", crossroads)
		if err := g.Validate(); err != nil {
			fmt.Printf("validation      FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("validation      ok (connected)\n")
	}

	if *relays > 0 {
		sites := roadmap.RelaySites(g, *relays)
		fmt.Printf("relay sites (%d):\n", len(sites))
		for _, s := range sites {
			p := g.Vertex(s)
			fmt.Printf("  vertex %3d at %s, degree %d\n", s, p, g.Degree(s))
		}
	}

	if *export {
		fmt.Print(roadmap.ExportWKT(g))
	}
}

func buildMap(spec, load string) (*roadmap.Graph, error) {
	if load != "" {
		data, err := os.ReadFile(load)
		if err != nil {
			return nil, err
		}
		return roadmap.ParseWKT(string(data))
	}
	switch {
	case spec == "helsinki":
		return roadmap.HelsinkiLike(), nil
	case strings.HasPrefix(spec, "grid:"):
		var rows, cols int
		var spacing float64
		if _, err := fmt.Sscanf(spec, "grid:%dx%dx%f", &rows, &cols, &spacing); err != nil {
			return nil, fmt.Errorf("bad grid spec %q (want grid:RxCxS): %v", spec, err)
		}
		return roadmap.Grid(rows, cols, spacing), nil
	default:
		return nil, fmt.Errorf("unknown map %q", spec)
	}
}
