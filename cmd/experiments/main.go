// Command experiments runs sweep experiments: the paper's evaluation —
// each figure of Soares et al. (ICPP 2009) and the ablations listed in
// DESIGN.md — plus any user-defined sweep loaded from a JSON spec file.
//
// Usage:
//
//	experiments -list
//	experiments -figure fig4
//	experiments -figure all -seeds 5 -out results/
//	experiments -figure fig8 -scale 0.25        # quick shape check
//	experiments -spec mysweep.json              # run a sweep defined as data
//	experiments -figure fig5 -metric overhead   # another metric, same sweep
//	experiments -dump-spec fig5                 # print a figure as a spec file
//	experiments -figure all -contact-cache      # one mobility sim per seed
//	experiments -cache-dir traces/ -seeds 5     # persist traces across runs
//	experiments -figure all -prewarm -seeds 5   # record all traces up front
//	experiments -cache-dir traces/ -cache-mmap  # zero-copy mapped replay
//	experiments -cache-dir traces/ -cache-max-mb 256  # LRU-bounded store
//	experiments -spec grid.json -progress       # per-cell progress on stderr
//	experiments -figure fig5 -out-jsonl r/      # stream cells as JSON lines
//	experiments -spec grid.json -out-jsonl r/ -resume  # finish an interrupted sweep
//
// Tables print to stdout; -out additionally writes one CSV and one JSON
// results artifact per experiment (the JSON carries every cell's complete
// run result, so any metric can be re-rendered without re-running), and
// -out-jsonl streams one <id>.jsonl file per experiment — header line,
// one line per finished cell in deterministic aggregation order, footer
// with the cell count and outcome — written incrementally, so a sweep's
// results never have to fit in memory. -spec loads a sweep spec
// (repeatable) into the same registry as the built-in figures; with
// -figure left at "all", only the loaded specs run. Specs may declare
// multi-axis grid sweeps ("axes") and spec-level "seeds"/"scale"
// defaults; explicit -seeds/-scale flags override them. -metric renders
// the table under a different metric than the experiment declares.
// -progress renders a live single-line cell counter on stderr — done/total
// with elapsed time, an ETA extrapolated from the cells simulated so far,
// and recording-pass/failure counters; with -resume, reused cells show as
// already done and are excluded from the ETA estimate.
//
// Interrupting a run (SIGINT/SIGTERM) cancels it cooperatively: in-flight
// cells stop at their next event-loop checkpoint, every artifact the
// completed cells support is still flushed — partial CSV and JSON
// artifacts marked incomplete, JSONL streams footed with the
// interruption — the contact cache's index is written, and the exit code
// is non-zero.
//
// -resume (with -out-jsonl) picks an interrupted sweep back up from its
// JSONL stream: the stream is validated against the sweep, completed
// cells are kept without re-simulating, a torn trailing line from a hard
// kill is cut, and only the missing cells run — the finished file is
// byte-identical to an uninterrupted run's. A stream from a different
// sweep (spec, seeds, or scale) is refused rather than overwritten; a
// missing or header-less file simply starts fresh, so -resume is safe to
// pass unconditionally when re-running a sweep.
//
// -contact-cache records each distinct (scenario, seed) mobility process
// once and replays it for every series and x cell that shares it —
// results are bit-identical to uncached runs, several times faster on
// multi-cell sweeps. -cache-dir additionally persists the traces on disk
// in the integrity-checked binary format (and implies -contact-cache),
// laid out as a 2-level sharded directory fronted by an index file;
// legacy flat-dir and text traces are migrated transparently (or all at
// once via -migrate-cache). -cache-mmap replays persisted traces through
// read-only memory-mapped views — concurrent processes share one
// page-cached copy of each trace, and cells replay with no per-cell
// trace allocation. -cache-max-mb bounds the store, evicting
// least-recently-used traces. -prewarm records the traces of every
// selected experiment in parallel before the first sweep starts, instead
// of on first touch inside it. A failing cell exits non-zero naming its
// (series, x, seed) coordinates.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"vdtn"
)

// specFlags collects repeatable -spec arguments.
type specFlags []string

func (s *specFlags) String() string { return strings.Join(*s, ",") }

func (s *specFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// fail reports an error on stderr and returns the process exit code, so
// every exit flows through run's single return path — deferred cleanup
// (closing the contact cache, flushing its index) always executes.
func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	return 1
}

func main() { os.Exit(run()) }

func run() int {
	var specs specFlags
	var (
		figure   = flag.String("figure", "all", `experiment id ("fig4".."fig9", "ablation-*", a loaded spec id, or "all")`)
		seeds    = flag.Int("seeds", 0, "number of replication seeds 1..n (0 = the spec's own seeds, else 1)")
		scale    = flag.Float64("scale", 0, "duration scale (0 = the spec's own scale, else 1 = the paper's 12 h)")
		work     = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		scanWork = flag.Int("scan-workers", 0, "scan-worker goroutines per cell (0 = serial; capped by -total-parallelism; traces are byte-identical at any setting)")
		totalPar = flag.Int("total-parallelism", 0, "shared goroutine budget split between sweep workers and their scan workers (0 = GOMAXPROCS)")
		outDir   = flag.String("out", "", "directory for CSV + JSON results output (optional)")
		outJSONL = flag.String("out-jsonl", "", "directory for streaming JSONL results (one <id>.jsonl per experiment, written cell by cell)")
		metric   = flag.String("metric", "", "render tables under this metric instead of each experiment's default (see -list-metrics)")
		progFlag = flag.Bool("progress", false, "render a live single-line cell counter with elapsed/ETA on stderr")
		list     = flag.Bool("list", false, "list experiment ids (built-ins and loaded specs) and exit")
		listM    = flag.Bool("list-metrics", false, "list metric and axis names and exit")
		dump     = flag.String("dump-spec", "", "print the named experiment as a JSON sweep spec and exit")
		useCC    = flag.Bool("contact-cache", false, "record each (scenario, seed) mobility process once and replay it across cells")
		ccDir    = flag.String("cache-dir", "", "persist recorded contact traces in this directory (implies -contact-cache)")
		warm     = flag.Bool("prewarm", false, "pre-record all contact traces across the selected experiments before the first sweep (implies -contact-cache)")
		lazy     = flag.Bool("lazy-record", false, "record contact traces on first touch inside the sweep instead of the parallel pre-recording pass")
		ccMmap   = flag.Bool("cache-mmap", false, "replay persisted traces through zero-copy memory-mapped views instead of decoding them (implies -contact-cache; needs -cache-dir)")
		ccMax    = flag.Float64("cache-max-mb", 0, "bound the persisted cache directory to this many MB, evicting least-recently-used traces (0 = unbounded)")
		ccMig    = flag.Bool("migrate-cache", false, "upgrade a legacy flat cache directory to the sharded layout up front (per-trace migration otherwise happens lazily on first touch)")
		resume   = flag.Bool("resume", false, "resume interrupted sweeps from their -out-jsonl streams: completed cells are kept, only missing ones run, and the finished file is byte-identical to an uninterrupted run's")
	)
	flag.Var(&specs, "spec", "load a sweep spec file (repeatable); with -figure all, only the loaded specs run")
	flag.Parse()

	// SIGINT/SIGTERM cancel the run cooperatively: cells stop at their
	// next event checkpoint, partial artifacts flush below, and the
	// deferred cache Close still writes the store index.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	registry := vdtn.NewExperimentRegistry()
	var loaded []vdtn.Experiment
	for _, path := range specs {
		data, err := os.ReadFile(path)
		if err != nil {
			return fail("%v", err)
		}
		exp, err := vdtn.LoadExperimentSpec(data)
		if err != nil {
			return fail("%s: %v", path, err)
		}
		if err := registry.Add(exp); err != nil {
			return fail("%s: %v", path, err)
		}
		loaded = append(loaded, exp)
	}

	if *list {
		for _, e := range registry.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *listM {
		fmt.Println("metrics:")
		for _, m := range vdtn.ExperimentMetrics() {
			fmt.Printf("  %-18s %s\n", string(m), m)
		}
		fmt.Println("axes:")
		for _, a := range vdtn.SweepAxes() {
			kind := "mobility-invariant (cells share one contact trace)"
			if a.MovesContacts {
				kind = "moves contacts (one trace per swept value)"
			}
			fmt.Printf("  %-18s %-20s %s\n", a.Name, a.Label, kind)
		}
		return 0
	}
	if *dump != "" {
		e, ok := registry.ByID(*dump)
		if !ok {
			return fail("unknown experiment %q; try -list", *dump)
		}
		data, err := vdtn.ExperimentSpecJSON(e)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Println(string(data))
		return 0
	}

	var todo []vdtn.Experiment
	switch {
	case *figure != "all":
		e, ok := registry.ByID(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; try -list\n", *figure)
			return 2
		}
		todo = []vdtn.Experiment{e}
	case len(loaded) > 0:
		// Specs were loaded and no explicit figure picked: run the specs,
		// not the whole catalog behind them.
		todo = loaded
	default:
		todo = registry.Experiments()
	}

	// A typoed -metric must fail here, in milliseconds — not after the
	// first multi-seed sweep has burned its wall clock.
	if *metric != "" {
		known := false
		for _, m := range vdtn.ExperimentMetrics() {
			known = known || string(m) == *metric
		}
		if !known {
			fmt.Fprintf(os.Stderr, "experiments: unknown metric %q; try -list-metrics\n", *metric)
			return 2
		}
	}

	// -seeds 0 leaves Seeds empty so a spec's own seed list (or the {1}
	// default) applies; an explicit flag overrides the spec.
	var seedList []uint64
	for i := 0; i < *seeds; i++ {
		seedList = append(seedList, uint64(i+1))
	}
	if *resume && *outJSONL == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume needs -out-jsonl (the JSONL stream is what a run resumes from)")
		return 2
	}

	opt := vdtn.ExperimentOptions{
		Seeds: seedList, Scale: *scale, Workers: *work, LazyRecord: *lazy,
		ScanWorkers: *scanWork, TotalParallelism: *totalPar,
	}
	if *useCC || *ccDir != "" || *warm || *ccMmap || *ccMig {
		if *ccMmap && *ccDir == "" {
			fmt.Fprintln(os.Stderr, "experiments: -cache-mmap needs -cache-dir (views map persisted traces)")
			return 2
		}
		if *ccMig && *ccDir == "" {
			fmt.Fprintln(os.Stderr, "experiments: -migrate-cache needs -cache-dir (nothing to migrate without a store)")
			return 2
		}
		// One cache across all experiments: sweeps over the same scenario
		// replay the traces the first one recorded. The deferred Close is
		// the single cleanup path every exit below flows through — it
		// releases mapped views and flushes the sharded store's index even
		// when a sweep fails or is interrupted.
		opt.ContactCache = &vdtn.ContactCache{
			Dir:      *ccDir,
			Mmap:     *ccMmap,
			MaxBytes: int64(*ccMax * 1e6),
			Warn:     func(msg string) { fmt.Fprintf(os.Stderr, "experiments: %s\n", msg) },
		}
		defer opt.ContactCache.Close()
	}

	if *ccMig {
		moved, err := opt.ContactCache.MigrateDir()
		if err != nil {
			return fail("cache migration: %v", err)
		}
		fmt.Printf("migrated %d legacy traces into the sharded cache layout\n", moved)
	}

	if *warm {
		// Record every distinct trace of every selected experiment up
		// front, so even the first experiment's sweep starts fully warmed.
		var cfgs []vdtn.Config
		for _, e := range todo {
			cc, err := vdtn.ExperimentCellConfigs(e, opt)
			if err != nil {
				return fail("%v", err)
			}
			cfgs = append(cfgs, cc...)
		}
		start := time.Now()
		if err := opt.ContactCache.PrewarmContext(ctx, cfgs, *work); err != nil {
			if ctx.Err() != nil {
				// SIGINT during the pre-recording pass: the in-flight
				// recordings stopped at their next event checkpoint and
				// nothing was memoized torn; the deferred cache Close still
				// flushes whatever completed.
				fmt.Fprintln(os.Stderr, "experiments: interrupted during prewarm")
				return 130
			}
			return fail("%v", err)
		}
		fmt.Printf("prewarmed %d contact traces in %v\n\n",
			opt.ContactCache.Len(), time.Since(start).Round(time.Millisecond))
		// Every key the sweeps can touch is now memoized, so the per-run
		// prewarm pool would only re-fingerprint cells to hit the cache.
		opt.LazyRecord = true
	}

	for _, dir := range []string{*outDir, *outJSONL} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fail("%v", err)
			}
		}
	}

	interrupted := false
	for _, e := range todo {
		code, cancelled := runOne(ctx, e, opt, *progFlag, *metric, *outDir, *outJSONL, *resume)
		if code != 0 && !cancelled {
			return code
		}
		if cancelled {
			interrupted = true
			break
		}
	}
	if opt.ContactCache != nil {
		fmt.Printf("contact cache: %d traces held, %d recording passes run\n",
			opt.ContactCache.Len(), opt.ContactCache.Recorded())
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; partial artifacts flushed")
		return 130
	}
	return 0
}

// openResume prepares an interrupted run's JSONL stream for resumption:
// it validates the stream against the sweep, truncates it after the last
// complete cell line (cutting the torn tail a kill -9 leaves, and the
// footer — which is rewritten after the appended cells), and returns the
// validated prefix plus the file positioned for appending. A missing
// file, or one whose header never reached the disk, is nothing to resume:
// (nil, nil, nil), and the caller starts the stream over. A stream that
// does not match the sweep (different spec, seeds, or scale) is an error,
// never silently overwritten.
func openResume(path string, e vdtn.Experiment, opt vdtn.ExperimentOptions) (*vdtn.ExperimentSweepPrefix, *os.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	prefix, err := vdtn.ReadExperimentJSONLPrefix(data, e, opt)
	if err != nil {
		return nil, nil, fmt.Errorf("resuming %s: %w", path, err)
	}
	if prefix.Offset == 0 {
		return nil, nil, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(prefix.Offset); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(prefix.Offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "experiments: resuming %s: reusing %d completed cells, appending at byte offset %d\n",
		path, len(prefix.Cells), prefix.Offset)
	return prefix, f, nil
}

// runOne executes one experiment through the Runner and renders whatever
// its results support. On cancellation it still renders the partial
// table and flushes partial artifacts (marked incomplete), reporting
// cancelled=true so the caller stops the remaining experiments and exits
// non-zero.
func runOne(ctx context.Context, e vdtn.Experiment, opt vdtn.ExperimentOptions, progFlag bool, metric, outDir, outJSONL string, resume bool) (code int, cancelled bool) {
	var mem vdtn.ExperimentMemorySink
	sinks := []vdtn.ExperimentSink{&mem}
	var resumeFrom *vdtn.ExperimentSweepPrefix
	if outJSONL != "" {
		path := filepath.Join(outJSONL, e.ID+".jsonl")
		var f *os.File
		if resume {
			var err error
			resumeFrom, f, err = openResume(path, e, opt)
			if err != nil {
				return fail("%v", err), false
			}
		}
		if f == nil {
			// Fresh run (or -resume with nothing usable on disk — a missing
			// file, or one whose header never flushed): start the stream over.
			var err error
			f, err = os.Create(path)
			if err != nil {
				return fail("%v", err), false
			}
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && code == 0 {
				code = fail("closing %s: %v", path, cerr)
			}
		}()
		sinks = append(sinks, vdtn.NewExperimentJSONLSinkResume(f, resumeFrom))
	}

	// The live counter is created per sweep so a resumed run's ETA only
	// extrapolates from the cells this run actually simulates.
	var observer vdtn.ExperimentObserver
	if progFlag {
		resumed := 0
		if resumeFrom != nil {
			resumed = len(resumeFrom.Cells)
		}
		observer = &vdtn.ExperimentProgressObserver{Resumed: resumed}
	}

	start := time.Now()
	runner := vdtn.Runner{Options: opt, Observer: observer, Sink: vdtn.TeeExperimentSink(sinks...), ResumeFrom: resumeFrom}
	err := runner.Run(ctx, e)
	cancelled = errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if err != nil && !cancelled {
		return fail("%v", err), false
	}
	res := mem.Results()

	m := e.Metric
	if metric != "" {
		m = vdtn.ExperimentMetric(metric)
	}
	tbl, terr := res.Table(m)
	if terr != nil {
		return fail("%v", terr), cancelled
	}
	fmt.Println(tbl.Render())
	fmt.Printf("(%d/%d runs in %v)\n\n",
		len(res.Cells), len(e.Scenarios)*e.Combos()*len(e.Xs)*len(res.Options.Seeds),
		time.Since(start).Round(time.Millisecond))
	if outDir != "" {
		csvPath := filepath.Join(outDir, e.ID+".csv")
		if err := os.WriteFile(csvPath, []byte(tbl.CSV()), 0o644); err != nil {
			return fail("writing %s: %v", csvPath, err), cancelled
		}
		artifact, err := res.JSON()
		if err != nil {
			return fail("rendering %s results: %v", e.ID, err), cancelled
		}
		jsonPath := filepath.Join(outDir, e.ID+".json")
		if err := os.WriteFile(jsonPath, append(artifact, '\n'), 0o644); err != nil {
			return fail("writing %s: %v", jsonPath, err), cancelled
		}
		fmt.Printf("wrote %s and %s\n\n", csvPath, jsonPath)
	}
	return 0, cancelled
}
