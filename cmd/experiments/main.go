// Command experiments regenerates the paper's evaluation: each figure of
// Soares et al. (ICPP 2009) and the ablations listed in DESIGN.md.
//
// Usage:
//
//	experiments -list
//	experiments -figure fig4
//	experiments -figure all -seeds 5 -out results/
//	experiments -figure fig8 -scale 0.25        # quick shape check
//	experiments -figure all -contact-cache      # one mobility sim per seed
//	experiments -cache-dir traces/ -seeds 5     # persist traces across runs
//
// Tables print to stdout; -out additionally writes one CSV per experiment.
// -contact-cache records each distinct (scenario, seed) mobility process
// once and replays it for every series and x cell that shares it — results
// are bit-identical to uncached runs, several times faster on multi-cell
// sweeps. -cache-dir additionally persists the traces on disk (and implies
// -contact-cache).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vdtn"
)

func main() {
	var (
		figure = flag.String("figure", "all", `experiment id ("fig4".."fig9", "ablation-*", or "all")`)
		seeds  = flag.Int("seeds", 1, "number of replication seeds (1..n)")
		scale  = flag.Float64("scale", 1, "duration scale (1 = the paper's 12 h)")
		work   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir = flag.String("out", "", "directory for CSV output (optional)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		useCC  = flag.Bool("contact-cache", false, "record each (scenario, seed) mobility process once and replay it across cells")
		ccDir  = flag.String("cache-dir", "", "persist recorded contact traces in this directory (implies -contact-cache)")
	)
	flag.Parse()

	catalog := vdtn.Experiments()
	if *list {
		for _, e := range catalog {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []vdtn.Experiment
	if *figure == "all" {
		todo = catalog
	} else {
		e, ok := vdtn.ExperimentByID(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; try -list\n", *figure)
			os.Exit(2)
		}
		todo = []vdtn.Experiment{e}
	}

	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	opt := vdtn.ExperimentOptions{Seeds: seedList, Scale: *scale, Workers: *work}
	if *useCC || *ccDir != "" {
		// One cache across all figures: they sweep the same scenarios, so
		// later figures replay the traces the first one recorded.
		opt.ContactCache = &vdtn.ContactCache{Dir: *ccDir}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range todo {
		start := time.Now()
		tbl := vdtn.RunExperiment(e, opt)
		fmt.Println(tbl.Render())
		fmt.Printf("(%d runs in %v)\n\n",
			len(e.Scenarios)*len(e.Xs)*len(seedList), time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if opt.ContactCache != nil {
		fmt.Printf("contact cache: %d traces held, %d recording passes run\n",
			opt.ContactCache.Len(), opt.ContactCache.Recorded())
	}
}
