// Command experiments regenerates the paper's evaluation: each figure of
// Soares et al. (ICPP 2009) and the ablations listed in DESIGN.md.
//
// Usage:
//
//	experiments -list
//	experiments -figure fig4
//	experiments -figure all -seeds 5 -out results/
//	experiments -figure fig8 -scale 0.25        # quick shape check
//	experiments -figure all -contact-cache      # one mobility sim per seed
//	experiments -cache-dir traces/ -seeds 5     # persist traces across runs
//	experiments -figure all -prewarm -seeds 5   # record all traces up front
//	experiments -cache-dir traces/ -cache-mmap  # zero-copy mapped replay
//	experiments -cache-dir traces/ -cache-max-mb 256  # LRU-bounded store
//
// Tables print to stdout; -out additionally writes one CSV per experiment.
// -contact-cache records each distinct (scenario, seed) mobility process
// once and replays it for every series and x cell that shares it — results
// are bit-identical to uncached runs, several times faster on multi-cell
// sweeps. -cache-dir additionally persists the traces on disk in the
// integrity-checked binary format (and implies -contact-cache), laid out
// as a 2-level sharded directory fronted by an index file; legacy
// flat-dir and text traces are migrated transparently (or all at once via
// -migrate-cache). -cache-mmap replays persisted traces through read-only
// memory-mapped views — concurrent processes share one page-cached copy
// of each trace, and cells replay with no per-cell trace allocation.
// -cache-max-mb bounds the store, evicting least-recently-used traces.
// -prewarm records the traces of every selected experiment in parallel
// before the first sweep starts, instead of on first touch inside it. A
// failing cell exits non-zero naming its (series, x, seed) coordinates.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vdtn"
)

func main() {
	var (
		figure = flag.String("figure", "all", `experiment id ("fig4".."fig9", "ablation-*", or "all")`)
		seeds  = flag.Int("seeds", 1, "number of replication seeds (1..n)")
		scale  = flag.Float64("scale", 1, "duration scale (1 = the paper's 12 h)")
		work   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir = flag.String("out", "", "directory for CSV output (optional)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		useCC  = flag.Bool("contact-cache", false, "record each (scenario, seed) mobility process once and replay it across cells")
		ccDir  = flag.String("cache-dir", "", "persist recorded contact traces in this directory (implies -contact-cache)")
		warm   = flag.Bool("prewarm", false, "pre-record all contact traces across the selected experiments before the first sweep (implies -contact-cache)")
		lazy   = flag.Bool("lazy-record", false, "record contact traces on first touch inside the sweep instead of the parallel pre-recording pass")
		ccMmap = flag.Bool("cache-mmap", false, "replay persisted traces through zero-copy memory-mapped views instead of decoding them (implies -contact-cache; needs -cache-dir)")
		ccMax  = flag.Float64("cache-max-mb", 0, "bound the persisted cache directory to this many MB, evicting least-recently-used traces (0 = unbounded)")
		ccMig  = flag.Bool("migrate-cache", false, "upgrade a legacy flat cache directory to the sharded layout up front (per-trace migration otherwise happens lazily on first touch)")
	)
	flag.Parse()

	catalog := vdtn.Experiments()
	if *list {
		for _, e := range catalog {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []vdtn.Experiment
	if *figure == "all" {
		todo = catalog
	} else {
		e, ok := vdtn.ExperimentByID(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; try -list\n", *figure)
			os.Exit(2)
		}
		todo = []vdtn.Experiment{e}
	}

	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	opt := vdtn.ExperimentOptions{Seeds: seedList, Scale: *scale, Workers: *work, LazyRecord: *lazy}
	if *useCC || *ccDir != "" || *warm || *ccMmap || *ccMig {
		if *ccMmap && *ccDir == "" {
			fmt.Fprintln(os.Stderr, "experiments: -cache-mmap needs -cache-dir (views map persisted traces)")
			os.Exit(2)
		}
		if *ccMig && *ccDir == "" {
			fmt.Fprintln(os.Stderr, "experiments: -migrate-cache needs -cache-dir (nothing to migrate without a store)")
			os.Exit(2)
		}
		// One cache across all figures: they sweep the same scenarios, so
		// later figures replay the traces the first one recorded.
		opt.ContactCache = &vdtn.ContactCache{
			Dir:      *ccDir,
			Mmap:     *ccMmap,
			MaxBytes: int64(*ccMax * 1e6),
			Warn:     func(msg string) { fmt.Fprintf(os.Stderr, "experiments: %s\n", msg) },
		}
		defer opt.ContactCache.Close()
	}

	if *ccMig {
		moved, err := opt.ContactCache.MigrateDir()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cache migration: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("migrated %d legacy traces into the sharded cache layout\n", moved)
	}

	if *warm {
		// Record every distinct trace of every selected experiment up
		// front, so even the first figure's sweep starts fully warmed.
		var cfgs []vdtn.Config
		for _, e := range todo {
			cfgs = append(cfgs, vdtn.ExperimentCellConfigs(e, opt)...)
		}
		start := time.Now()
		if err := opt.ContactCache.Prewarm(cfgs, *work); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("prewarmed %d contact traces in %v\n\n",
			opt.ContactCache.Len(), time.Since(start).Round(time.Millisecond))
		// Every key the sweeps can touch is now memoized, so the per-run
		// prewarm pool would only re-fingerprint cells to hit the cache.
		opt.LazyRecord = true
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range todo {
		start := time.Now()
		tbl, err := vdtn.RunExperimentE(e, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tbl.Render())
		fmt.Printf("(%d runs in %v)\n\n",
			len(e.Scenarios)*len(e.Xs)*len(seedList), time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if opt.ContactCache != nil {
		fmt.Printf("contact cache: %d traces held, %d recording passes run\n",
			opt.ContactCache.Len(), opt.ContactCache.Recorded())
	}
}
