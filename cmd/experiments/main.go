// Command experiments runs sweep experiments: the paper's evaluation —
// each figure of Soares et al. (ICPP 2009) and the ablations listed in
// DESIGN.md — plus any user-defined sweep loaded from a JSON spec file.
//
// Usage:
//
//	experiments -list
//	experiments -figure fig4
//	experiments -figure all -seeds 5 -out results/
//	experiments -figure fig8 -scale 0.25        # quick shape check
//	experiments -spec mysweep.json              # run a sweep defined as data
//	experiments -figure fig5 -metric overhead   # another metric, same sweep
//	experiments -dump-spec fig5                 # print a figure as a spec file
//	experiments -figure all -contact-cache      # one mobility sim per seed
//	experiments -cache-dir traces/ -seeds 5     # persist traces across runs
//	experiments -figure all -prewarm -seeds 5   # record all traces up front
//	experiments -cache-dir traces/ -cache-mmap  # zero-copy mapped replay
//	experiments -cache-dir traces/ -cache-max-mb 256  # LRU-bounded store
//
// Tables print to stdout; -out additionally writes one CSV and one JSON
// results artifact per experiment (the JSON carries every cell's complete
// run result, so any metric can be re-rendered without re-running).
// -spec loads a sweep spec (repeatable) into the same registry as the
// built-in figures; with -figure left at "all", only the loaded specs
// run. -metric renders the table under a different metric than the
// experiment declares. -contact-cache records each distinct (scenario,
// seed) mobility process once and replays it for every series and x cell
// that shares it — results are bit-identical to uncached runs, several
// times faster on multi-cell sweeps. -cache-dir additionally persists the
// traces on disk in the integrity-checked binary format (and implies
// -contact-cache), laid out as a 2-level sharded directory fronted by an
// index file; legacy flat-dir and text traces are migrated transparently
// (or all at once via -migrate-cache). -cache-mmap replays persisted
// traces through read-only memory-mapped views — concurrent processes
// share one page-cached copy of each trace, and cells replay with no
// per-cell trace allocation. -cache-max-mb bounds the store, evicting
// least-recently-used traces. -prewarm records the traces of every
// selected experiment in parallel before the first sweep starts, instead
// of on first touch inside it. A failing cell exits non-zero naming its
// (series, x, seed) coordinates.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vdtn"
)

// specFlags collects repeatable -spec arguments.
type specFlags []string

func (s *specFlags) String() string { return strings.Join(*s, ",") }

func (s *specFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var specs specFlags
	var (
		figure = flag.String("figure", "all", `experiment id ("fig4".."fig9", "ablation-*", a loaded spec id, or "all")`)
		seeds  = flag.Int("seeds", 1, "number of replication seeds (1..n)")
		scale  = flag.Float64("scale", 1, "duration scale (1 = the paper's 12 h)")
		work   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir = flag.String("out", "", "directory for CSV + JSON results output (optional)")
		metric = flag.String("metric", "", "render tables under this metric instead of each experiment's default (see -list-metrics)")
		list   = flag.Bool("list", false, "list experiment ids (built-ins and loaded specs) and exit")
		listM  = flag.Bool("list-metrics", false, "list metric and axis names and exit")
		dump   = flag.String("dump-spec", "", "print the named experiment as a JSON sweep spec and exit")
		useCC  = flag.Bool("contact-cache", false, "record each (scenario, seed) mobility process once and replay it across cells")
		ccDir  = flag.String("cache-dir", "", "persist recorded contact traces in this directory (implies -contact-cache)")
		warm   = flag.Bool("prewarm", false, "pre-record all contact traces across the selected experiments before the first sweep (implies -contact-cache)")
		lazy   = flag.Bool("lazy-record", false, "record contact traces on first touch inside the sweep instead of the parallel pre-recording pass")
		ccMmap = flag.Bool("cache-mmap", false, "replay persisted traces through zero-copy memory-mapped views instead of decoding them (implies -contact-cache; needs -cache-dir)")
		ccMax  = flag.Float64("cache-max-mb", 0, "bound the persisted cache directory to this many MB, evicting least-recently-used traces (0 = unbounded)")
		ccMig  = flag.Bool("migrate-cache", false, "upgrade a legacy flat cache directory to the sharded layout up front (per-trace migration otherwise happens lazily on first touch)")
	)
	flag.Var(&specs, "spec", "load a sweep spec file (repeatable); with -figure all, only the loaded specs run")
	flag.Parse()

	registry := vdtn.NewExperimentRegistry()
	var loaded []vdtn.Experiment
	for _, path := range specs {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		exp, err := vdtn.LoadExperimentSpec(data)
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		if err := registry.Add(exp); err != nil {
			fatalf("%s: %v", path, err)
		}
		loaded = append(loaded, exp)
	}

	if *list {
		for _, e := range registry.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	if *listM {
		fmt.Println("metrics:")
		for _, m := range vdtn.ExperimentMetrics() {
			fmt.Printf("  %-18s %s\n", string(m), m)
		}
		fmt.Println("axes:")
		for _, a := range vdtn.SweepAxes() {
			kind := "mobility-invariant (cells share one contact trace)"
			if a.MovesContacts {
				kind = "moves contacts (one trace per swept value)"
			}
			fmt.Printf("  %-18s %-20s %s\n", a.Name, a.Label, kind)
		}
		return
	}
	if *dump != "" {
		e, ok := registry.ByID(*dump)
		if !ok {
			fatalf("unknown experiment %q; try -list", *dump)
		}
		data, err := vdtn.ExperimentSpecJSON(e)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(string(data))
		return
	}

	var todo []vdtn.Experiment
	switch {
	case *figure != "all":
		e, ok := registry.ByID(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; try -list\n", *figure)
			os.Exit(2)
		}
		todo = []vdtn.Experiment{e}
	case len(loaded) > 0:
		// Specs were loaded and no explicit figure picked: run the specs,
		// not the whole catalog behind them.
		todo = loaded
	default:
		todo = registry.Experiments()
	}

	// A typoed -metric must fail here, in milliseconds — not after the
	// first multi-seed sweep has burned its wall clock.
	if *metric != "" {
		known := false
		for _, m := range vdtn.ExperimentMetrics() {
			known = known || string(m) == *metric
		}
		if !known {
			fmt.Fprintf(os.Stderr, "experiments: unknown metric %q; try -list-metrics\n", *metric)
			os.Exit(2)
		}
	}

	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	opt := vdtn.ExperimentOptions{Seeds: seedList, Scale: *scale, Workers: *work, LazyRecord: *lazy}
	if *useCC || *ccDir != "" || *warm || *ccMmap || *ccMig {
		if *ccMmap && *ccDir == "" {
			fmt.Fprintln(os.Stderr, "experiments: -cache-mmap needs -cache-dir (views map persisted traces)")
			os.Exit(2)
		}
		if *ccMig && *ccDir == "" {
			fmt.Fprintln(os.Stderr, "experiments: -migrate-cache needs -cache-dir (nothing to migrate without a store)")
			os.Exit(2)
		}
		// One cache across all experiments: sweeps over the same scenario
		// replay the traces the first one recorded.
		opt.ContactCache = &vdtn.ContactCache{
			Dir:      *ccDir,
			Mmap:     *ccMmap,
			MaxBytes: int64(*ccMax * 1e6),
			Warn:     func(msg string) { fmt.Fprintf(os.Stderr, "experiments: %s\n", msg) },
		}
		defer opt.ContactCache.Close()
	}

	if *ccMig {
		moved, err := opt.ContactCache.MigrateDir()
		if err != nil {
			fatalf("cache migration: %v", err)
		}
		fmt.Printf("migrated %d legacy traces into the sharded cache layout\n", moved)
	}

	if *warm {
		// Record every distinct trace of every selected experiment up
		// front, so even the first experiment's sweep starts fully warmed.
		var cfgs []vdtn.Config
		for _, e := range todo {
			cc, err := vdtn.ExperimentCellConfigs(e, opt)
			if err != nil {
				fatalf("%v", err)
			}
			cfgs = append(cfgs, cc...)
		}
		start := time.Now()
		if err := opt.ContactCache.Prewarm(cfgs, *work); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("prewarmed %d contact traces in %v\n\n",
			opt.ContactCache.Len(), time.Since(start).Round(time.Millisecond))
		// Every key the sweeps can touch is now memoized, so the per-run
		// prewarm pool would only re-fingerprint cells to hit the cache.
		opt.LazyRecord = true
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	for _, e := range todo {
		start := time.Now()
		res, err := vdtn.RunExperimentE(e, opt)
		if err != nil {
			fatalf("%v", err)
		}
		m := e.Metric
		if *metric != "" {
			m = vdtn.ExperimentMetric(*metric)
		}
		tbl, err := res.Table(m)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(tbl.Render())
		fmt.Printf("(%d runs in %v)\n\n",
			len(e.Scenarios)*len(e.Xs)*len(seedList), time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			csvPath := filepath.Join(*outDir, e.ID+".csv")
			if err := os.WriteFile(csvPath, []byte(tbl.CSV()), 0o644); err != nil {
				fatalf("writing %s: %v", csvPath, err)
			}
			artifact, err := res.JSON()
			if err != nil {
				fatalf("rendering %s results: %v", e.ID, err)
			}
			jsonPath := filepath.Join(*outDir, e.ID+".json")
			if err := os.WriteFile(jsonPath, append(artifact, '\n'), 0o644); err != nil {
				fatalf("writing %s: %v", jsonPath, err)
			}
			fmt.Printf("wrote %s and %s\n\n", csvPath, jsonPath)
		}
	}
	if opt.ContactCache != nil {
		fmt.Printf("contact cache: %d traces held, %d recording passes run\n",
			opt.ContactCache.Len(), opt.ContactCache.Recorded())
	}
}
