package vdtn_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// killSpec is examples/sweeps/grid.json scaled up (3x2 grid, 8 seeds,
// 4 h horizon) so the single-worker cached sweep runs for most of a
// second — long enough that a timed SIGKILL reliably lands mid-cells
// instead of racing the exit.
const killSpec = `{
  "name": "ttl-copies-grid",
  "duration_hours": 4,
  "vehicles": 14,
  "relays": 2,
  "vehicle_buffer_mb": 10,
  "relay_buffer_mb": 20,
  "sweep": {
    "id": "ttl-copies-grid",
    "title": "Delivery probability over a TTL x copy-budget grid",
    "axes": [
      {"axis": "ttl_min", "values": [15, 30, 45]},
      {"axis": "copies", "values": [4, 12]}
    ],
    "metric": "delivery_prob",
    "seeds": [1, 2, 3, 4, 5, 6, 7, 8],
    "scale": 1
  },
  "series": [
    {"name": "SprayAndWait/Lifetime", "protocol": "spraywait", "policy": "lifetime"}
  ]
}`

// TestExperimentsKillAndResumeByteIdentical is the CI smoke gate for
// crash-safe sweeps: cmd/experiments SIGKILL'd mid-run (no chance to
// flush, foot, or close anything) and rerun with -resume must produce a
// JSONL stream byte-identical to an uninterrupted run's. The kill lands
// at several delays so every lifecycle window is exercised — before the
// header, mid-cells, and after the run already finished (where -resume
// must keep a complete file untouched, not re-run or corrupt it). A
// shared -cache-dir across the killed and resumed runs additionally
// drags the store's crash-stale index through its self-healing path.
func TestExperimentsKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the real CLI")
	}
	if runtime.GOOS == "windows" {
		t.Skip("no SIGKILL on windows")
	}

	bin := filepath.Join(t.TempDir(), "experiments")
	build := exec.Command("go", "build", "-o", bin, "./cmd/experiments")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/experiments: %v\n%s", err, out)
	}
	spec := filepath.Join(t.TempDir(), "heavy-grid.json")
	if err := os.WriteFile(spec, []byte(killSpec), 0o644); err != nil {
		t.Fatal(err)
	}

	// The in-test golden: one uninterrupted run of the same spec. Its own
	// cache dir and default workers keep it quick — the stream's bytes do
	// not depend on either.
	goldenDir := filepath.Join(t.TempDir(), "jsonl")
	ref := exec.Command(bin, "-spec", spec, "-out-jsonl", goldenDir, "-cache-dir", filepath.Join(t.TempDir(), "cache"))
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("golden run failed: %v\n%s", err, out)
	}
	golden, err := os.ReadFile(filepath.Join(goldenDir, "ttl-copies-grid.jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	partials := 0
	for _, delay := range []time.Duration{
		0, 200 * time.Millisecond, 500 * time.Millisecond, 30 * time.Second,
	} {
		t.Run(fmt.Sprintf("kill-after-%s", delay), func(t *testing.T) {
			dir := t.TempDir()
			jsonlDir := filepath.Join(dir, "jsonl")
			cacheDir := filepath.Join(dir, "cache")
			stream := filepath.Join(jsonlDir, "ttl-copies-grid.jsonl")

			// First run: SIGKILL after the delay. -workers 1 stretches the
			// sweep to ~1s so the mid delays land mid-cells; it finishes
			// well inside 30s, so the longest delay is the complete-file
			// case. The resume runs use default workers — the stream's
			// bytes are deterministic regardless of worker count, and the
			// mixed setting pins that too.
			first := exec.Command(bin, "-spec", spec, "-out-jsonl", jsonlDir, "-cache-dir", cacheDir, "-workers", "1")
			if err := first.Start(); err != nil {
				t.Fatal(err)
			}
			killed := false
			done := make(chan error, 1)
			go func() { done <- first.Wait() }()
			select {
			case <-time.After(delay):
				if err := first.Process.Signal(syscall.SIGKILL); err == nil {
					killed = true
				}
				<-done
			case <-done:
			}
			if cut, err := os.ReadFile(stream); err == nil && killed && len(cut) > 0 && len(cut) < len(golden) {
				partials++
			}
			t.Logf("first run killed=%v", killed)

			// Second run, -resume: must complete the stream exactly.
			var stderr bytes.Buffer
			second := exec.Command(bin, "-spec", spec, "-out-jsonl", jsonlDir, "-cache-dir", cacheDir, "-resume")
			second.Stderr = &stderr
			if err := second.Run(); err != nil {
				t.Fatalf("resume run failed: %v\n%s", err, &stderr)
			}
			got, err := os.ReadFile(stream)
			if err != nil {
				t.Fatalf("resumed stream missing: %v", err)
			}
			if !bytes.Equal(got, golden) {
				t.Fatalf("resumed stream differs from the uninterrupted golden\n--- got ---\n%s--- want ---\n%s", got, golden)
			}

			// Third run over the now-complete stream: still byte-identical —
			// -resume is idempotent, not additive.
			third := exec.Command(bin, "-spec", spec, "-out-jsonl", jsonlDir, "-cache-dir", cacheDir, "-resume")
			if out, err := third.CombinedOutput(); err != nil {
				t.Fatalf("resume over a complete stream failed: %v\n%s", err, out)
			}
			again, err := os.ReadFile(stream)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, golden) {
				t.Fatal("second resume over a complete stream changed its bytes")
			}
		})
	}
	// At least one kill should have caught the stream mid-cells; if none
	// did, the delays no longer straddle the sweep and need retuning.
	t.Logf("mid-stream kills: %d", partials)
}

// TestExperimentsResumeRejectsForeignStream: -resume against a stream
// written for a different sweep must refuse rather than splice cells from
// two experiments into one file.
func TestExperimentsResumeRejectsForeignStream(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real CLI")
	}

	bin := filepath.Join(t.TempDir(), "experiments")
	build := exec.Command("go", "build", "-o", bin, "./cmd/experiments")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/experiments: %v\n%s", err, out)
	}
	spec, err := filepath.Abs(filepath.Join("examples", "sweeps", "grid.json"))
	if err != nil {
		t.Fatal(err)
	}

	jsonlDir := filepath.Join(t.TempDir(), "jsonl")
	if err := os.MkdirAll(jsonlDir, 0o755); err != nil {
		t.Fatal(err)
	}
	foreign := `{"format":"vdtn-sweep-jsonl/1","experiment":"ttl-copies-grid","metric":"delivery","seeds":99}` + "\n"
	if err := os.WriteFile(filepath.Join(jsonlDir, "ttl-copies-grid.jsonl"), []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-spec", spec, "-out-jsonl", jsonlDir, "-resume")
	cmd.Stderr = &stderr
	err = cmd.Run()
	if err == nil {
		t.Fatalf("resume over a foreign stream succeeded; stderr: %s", &stderr)
	}
	if !strings.Contains(stderr.String(), "different sweep") {
		t.Fatalf("stderr does not explain the refusal: %s", &stderr)
	}
}

// TestExperimentsResumeNeedsJSONL: -resume without -out-jsonl has nothing
// to resume from and must exit with a usage error.
func TestExperimentsResumeNeedsJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real CLI")
	}
	bin := filepath.Join(t.TempDir(), "experiments")
	build := exec.Command("go", "build", "-o", bin, "./cmd/experiments")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/experiments: %v\n%s", err, out)
	}
	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-resume")
	cmd.Stderr = &stderr
	err := cmd.Run()
	exitErr, ok := err.(*exec.ExitError)
	if !ok || exitErr.ExitCode() != 2 {
		t.Fatalf("-resume without -out-jsonl: err = %v, want exit 2 (stderr: %s)", err, &stderr)
	}
	if !strings.Contains(stderr.String(), "-out-jsonl") {
		t.Fatalf("stderr does not point at the missing flag: %s", &stderr)
	}
}
