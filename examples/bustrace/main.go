// Bustrace: replay a recorded connectivity trace through the routers.
//
// The paper's introduction distinguishes vehicles that "move along the
// roads randomly (e.g. cars), or following predefined routes (e.g.
// buses)". Bus fleets produce *predictable* contact schedules — exactly
// what contact-plan mode consumes. This example scripts a small two-line
// bus network with a shared interchange stop, injects commuter messages,
// and shows how a message crosses lines by being carried to the
// interchange — then prints the delivery-path analysis from the trace.
//
//	go run ./examples/bustrace
package main

import (
	"fmt"
	"log"

	"vdtn"
	"vdtn/internal/units"
)

func main() {
	// Nodes: 0,1 are buses on line A; 2,3 are buses on line B;
	// 4 is the stationary interchange kiosk (a relay in paper terms).
	// Each bus meets the kiosk on a 10-minute headway; the two lines
	// never meet directly.
	const kiosk = 4
	var windows []vdtn.Contact
	for trip := 0; trip < 6; trip++ {
		base := float64(trip) * 600
		windows = append(windows,
			vdtn.Contact{A: 0, B: kiosk, Start: base + 60, End: base + 90},
			vdtn.Contact{A: 1, B: kiosk, Start: base + 360, End: base + 390},
			vdtn.Contact{A: 2, B: kiosk, Start: base + 180, End: base + 210},
			vdtn.Contact{A: 3, B: kiosk, Start: base + 480, End: base + 510},
		)
	}
	plan, err := vdtn.NewContactPlan(windows)
	if err != nil {
		log.Fatal(err)
	}

	cfg := vdtn.DefaultConfig()
	cfg.Plan = plan
	cfg.Vehicles = 5
	cfg.Relays = 0
	cfg.Duration = units.Hours(1)
	cfg.TTL = units.Minutes(50)
	cfg.Protocol = vdtn.ProtoEpidemic
	cfg.Policy = vdtn.PolicyLifetime
	// Commuter messages crossing between the lines.
	cfg.Script = []vdtn.ScriptedMessage{
		{Time: 0, From: 0, To: 2, Size: units.KB(800)},   // line A -> line B
		{Time: 120, From: 3, To: 1, Size: units.MB(1.2)}, // line B -> line A
		{Time: 300, From: 1, To: 3, Size: units.KB(600)},
	}

	var lg vdtn.TraceLog
	cfg.Trace = lg.Append

	result, err := vdtn.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bus network: 4 buses on 2 lines + interchange kiosk, %d scheduled contacts\n\n",
		plan.Len())
	fmt.Println(result.Report)

	analysis := vdtn.AnalyzeTrace(lg.Events(), cfg.Duration)
	fmt.Printf("\n--- trace analysis ---\n%s\n", analysis)
	fmt.Println("delivery paths (messages hop lines via the kiosk, node 4):")
	for id := vdtn.MessageID(1); id <= 3; id++ {
		if path := analysis.DeliveryPath(id); path != nil {
			fmt.Printf("  %v: %v\n", id, path)
		} else {
			fmt.Printf("  %v: not delivered\n", id)
		}
	}
}
