// Quickstart: run the paper's scenario once and print the metrics.
//
// This is the smallest useful vdtn program: pick an evaluation point
// (TTL, protocol, policy, seed), run it, read the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vdtn"
)

func main() {
	// The paper's scenario at TTL = 120 minutes, with the paper's
	// proposed Lifetime scheduling-dropping policy on Epidemic routing.
	cfg := vdtn.PaperConfig(120, vdtn.ProtoEpidemic, vdtn.PolicyLifetime, 1)

	result, err := vdtn.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario: %s\n\n", result.Label)
	fmt.Println(result.Report)
	fmt.Printf("\n%d contacts, %d transfers completed\n",
		result.Contacts, result.TransfersCompleted)

	// Runs are deterministic: rerunning the same config+seed reproduces
	// the exact same numbers.
	again, _ := vdtn.Run(cfg)
	fmt.Printf("\ndeterminism check: delivery %.4f == %.4f: %v\n",
		result.DeliveryProbability, again.DeliveryProbability,
		result.DeliveryProbability == again.DeliveryProbability)
}
