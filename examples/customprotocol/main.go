// Customprotocol: plug your own routing protocol into the simulator.
//
// The vdtn.Router interface is the extension point the routing protocols
// themselves are built on. This example implements "FreshFlood" from
// scratch against the public API: an epidemic variant that only relays
// messages still in the first half of their lifetime (older replicas ride
// along in the buffer but are no longer replicated — spending contact
// airtime on messages with time to benefit from it). It then races the
// custom protocol against stock Epidemic on the same scenario and seed.
//
//	go run ./examples/customprotocol
package main

import (
	"fmt"
	"log"
	"sort"

	"vdtn"
)

// FreshFlood is the custom router. It needs no locking and no time
// sources: the simulator calls it single-threaded with explicit `now`.
type FreshFlood struct {
	self  int
	buf   *vdtn.Buffer
	queue map[int][]*vdtn.Message
}

// NewFreshFlood returns an unattached FreshFlood router.
func NewFreshFlood() *FreshFlood {
	return &FreshFlood{queue: make(map[int][]*vdtn.Message)}
}

// Name implements vdtn.Router.
func (r *FreshFlood) Name() string { return "FreshFlood" }

// Attach implements vdtn.Router.
func (r *FreshFlood) Attach(self int, buf *vdtn.Buffer) {
	r.self = self
	r.buf = buf
}

// fresh reports whether m is still worth replicating: under half its TTL.
func fresh(m *vdtn.Message, now float64) bool {
	return m.Age(now) < m.TTL/2
}

// ContactUp implements vdtn.Router.
func (r *FreshFlood) ContactUp(now float64, p vdtn.Peer) { r.Refresh(now, p) }

// Refresh implements vdtn.Router: deliverable messages first, then fresh
// replicas the peer lacks, youngest first.
func (r *FreshFlood) Refresh(now float64, p vdtn.Peer) {
	r.buf.Expire(now)
	var deliverable, relay []*vdtn.Message
	for _, m := range r.buf.Messages() {
		switch {
		case p.HasDelivered(m.ID):
		case m.To == p.ID():
			deliverable = append(deliverable, m)
		case !p.Has(m.ID) && fresh(m, now):
			relay = append(relay, m)
		}
	}
	byYouth := func(ms []*vdtn.Message) {
		sort.SliceStable(ms, func(i, j int) bool {
			if ms[i].Created != ms[j].Created {
				return ms[i].Created > ms[j].Created // youngest first
			}
			return ms[i].ID < ms[j].ID
		})
	}
	byYouth(deliverable)
	byYouth(relay)
	r.queue[p.ID()] = append(deliverable, relay...)
}

// ContactDown implements vdtn.Router.
func (r *FreshFlood) ContactDown(now float64, p vdtn.Peer) { delete(r.queue, p.ID()) }

// NextSend implements vdtn.Router.
func (r *FreshFlood) NextSend(now float64, p vdtn.Peer) *vdtn.Send {
	q := r.queue[p.ID()]
	for len(q) > 0 {
		m := q[0]
		q = q[1:]
		if !r.buf.Has(m.ID) || m.Expired(now) || p.HasDelivered(m.ID) {
			continue
		}
		if m.To != p.ID() && (p.Has(m.ID) || !fresh(m, now)) {
			continue
		}
		r.queue[p.ID()] = q
		return &vdtn.Send{Msg: m}
	}
	r.queue[p.ID()] = q
	return nil
}

// OnSent implements vdtn.Router.
func (r *FreshFlood) OnSent(now float64, p vdtn.Peer, s *vdtn.Send, delivered bool) {
	if delivered {
		r.buf.Remove(s.Msg.ID)
	}
}

// OnAbort implements vdtn.Router.
func (r *FreshFlood) OnAbort(now float64, p vdtn.Peer, s *vdtn.Send) {
	r.queue[p.ID()] = append([]*vdtn.Message{s.Msg}, r.queue[p.ID()]...)
}

// Receive implements vdtn.Router: store with the paper's Lifetime ASC
// eviction, so the oldest-to-expire replicas go first under pressure.
func (r *FreshFlood) Receive(now float64, m *vdtn.Message, from vdtn.Peer) (bool, []*vdtn.Message) {
	if m.Expired(now) {
		return false, nil
	}
	r.buf.Expire(now)
	evicted, ok := r.buf.Add(now, m, vdtn.NewLifetimeASCDrop())
	return ok, evicted
}

// AddMessage implements vdtn.Router.
func (r *FreshFlood) AddMessage(now float64, m *vdtn.Message) (bool, []*vdtn.Message) {
	r.buf.Expire(now)
	evicted, ok := r.buf.Add(now, m, vdtn.NewLifetimeASCDrop())
	return ok, evicted
}

func main() {
	const ttl = 120
	run := func(name string, mutate func(*vdtn.Config)) vdtn.Result {
		cfg := vdtn.PaperConfig(ttl, vdtn.ProtoEpidemic, vdtn.PolicyLifetime, 1)
		if mutate != nil {
			mutate(&cfg)
		}
		r, err := vdtn.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s delivery %.3f   avg delay %6.1f min   drops %d\n",
			name, r.DeliveryProbability, r.AvgDelay/60, r.Dropped)
		return r
	}

	fmt.Printf("Paper scenario, TTL %d min, same seed\n\n", ttl)
	run("Epidemic/Lifetime", nil)
	run("FreshFlood (custom)", func(cfg *vdtn.Config) {
		cfg.NewRouter = func(node int, rnd *vdtn.Rand) vdtn.Router {
			return NewFreshFlood()
		}
	})
	fmt.Println("\nFreshFlood trades a little delivery ratio for less replication of")
	fmt.Println("stale messages — implemented entirely against the public vdtn API.")
}
