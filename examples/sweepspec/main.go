// Sweepspec: run an experiment defined entirely as data.
//
// The harness's sweep engine treats experiments as files: a scenario JSON
// with "sweep" and "series" blocks describes the base scenario, the swept
// axis, its values and the compared series (see docs/SWEEPS.md). This
// example loads such a spec, runs it through the error-returning
// RunExperimentE path with a shared contact cache, renders the declared
// metric's table, and then — because every cell keeps its complete run
// result — renders a second metric from the same finished sweep without
// re-running anything.
//
//	go run ./examples/sweepspec examples/sweeps/fleet.json
package main

import (
	"fmt"
	"log"
	"os"

	"vdtn"
)

func main() {
	path := "examples/sweeps/fleet.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := vdtn.LoadExperimentSpec(data)
	if err != nil {
		log.Fatal(err)
	}

	axis, _ := vdtn.SweepAxisByName(exp.Axis)
	fmt.Printf("loaded %q: %d series × %d values on axis %s\n", exp.ID, len(exp.Scenarios), len(exp.Xs), exp.Axis)
	if axis.MovesContacts {
		fmt.Println("axis moves the contact process: the cache records one trace per swept value")
	} else {
		fmt.Println("axis is mobility-invariant: every cell shares one cached contact trace per seed")
	}
	fmt.Println()

	cache := &vdtn.ContactCache{}
	res, err := vdtn.RunExperimentE(exp, vdtn.ExperimentOptions{ContactCache: cache})
	if err != nil {
		log.Fatal(err) // a failing cell arrives with its (series, x, seed) coordinates
	}

	fmt.Println(res.DefaultTable().Render())

	// A different metric, same sweep: no cell re-runs.
	over, err := res.Table(vdtn.MetricOverhead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(over.Render())
	fmt.Printf("contact cache: %d traces for %d cells\n", cache.Len(), len(res.Cells))
}
