// Policycompare: the paper's core claim on one screen.
//
// A traffic-notification service (the paper's motivating low-latency
// application) cares about how fast messages arrive. This example runs the
// same 12-hour scenario under the three Table I scheduling-dropping
// policies for both Epidemic and Spray-and-Wait routing and prints the
// delay and delivery-probability comparison — the essence of Figures 4-7.
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"vdtn"
)

func main() {
	const ttlMinutes = 120
	const seed = 1

	policies := []vdtn.PolicyKind{
		vdtn.PolicyFIFOFIFO,
		vdtn.PolicyRandomFIFO,
		vdtn.PolicyLifetime,
	}
	protocols := []vdtn.ProtocolKind{
		vdtn.ProtoEpidemic,
		vdtn.ProtoSprayAndWait,
	}

	fmt.Printf("Paper scenario, TTL %d min, seed %d\n\n", ttlMinutes, seed)
	fmt.Printf("%-14s %-26s %12s %14s\n", "protocol", "policy", "avg delay", "delivery prob")

	for _, proto := range protocols {
		var baseline float64
		for _, pol := range policies {
			cfg := vdtn.PaperConfig(ttlMinutes, proto, pol, seed)
			r, err := vdtn.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			delayMin := r.AvgDelay / 60
			if pol == vdtn.PolicyFIFOFIFO {
				baseline = delayMin
			}
			fmt.Printf("%-14s %-26s %9.1f min %14.3f", proto, pol, delayMin, r.DeliveryProbability)
			if pol != vdtn.PolicyFIFOFIFO {
				fmt.Printf("   (%.1f min sooner than FIFO-FIFO)", baseline-delayMin)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("The Lifetime policy row should show the largest delay reduction and")
	fmt.Println("the highest delivery probability for both protocols (paper §III.A-B).")
}
