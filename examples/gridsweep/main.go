// Gridsweep: a multi-axis grid sweep through the context-aware Runner,
// with progress observation, cancellation, and a streaming JSONL sink.
//
// The sweep is the checked-in 2-axis grid spec (message TTL × Spray and
// Wait copy budget): cells are the cross-product of both axes' values
// times the spec's own seeds. The Runner streams every finished cell —
// in deterministic aggregation order — to a JSONL file while a memory
// sink keeps the same cells for table rendering, an observer prints
// per-cell progress, and Ctrl-C cancels the sweep cooperatively: cells
// stop at their next event-loop checkpoint, and both sinks keep the
// complete cells delivered before the cut (the JSONL stream ends in a
// footer recording the interruption).
//
//	go run ./examples/gridsweep
//	go run ./examples/gridsweep my-grid.json out.jsonl
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"vdtn"
)

// progress prints each finished cell with its grid coordinates.
type progress struct {
	vdtn.ExperimentBaseObserver
}

func (progress) CellFinished(c vdtn.ExperimentCellID, elapsed time.Duration, err error) {
	if err != nil {
		fmt.Printf("  [%d/%d] failed: %v\n", c.Index+1, c.Total, err)
		return
	}
	fmt.Printf("  [%d/%d] %s x=%g", c.Index+1, c.Total, c.Series, c.X)
	for _, g := range c.Grid {
		fmt.Printf(" %s=%g", g.Axis, g.Value)
	}
	fmt.Printf(" seed=%d (%v)\n", c.Seed, elapsed.Round(time.Millisecond))
}

func main() {
	specPath, outPath := "examples/sweeps/grid.json", "gridsweep.jsonl"
	if len(os.Args) > 1 {
		specPath = os.Args[1]
	}
	if len(os.Args) > 2 {
		outPath = os.Args[2]
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := vdtn.LoadExperimentSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q: %d series × %d×%d grid cells × %d seeds\n",
		exp.ID, len(exp.Scenarios), len(exp.Xs), exp.Combos(), max(len(exp.Seeds), 1))

	out, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()

	// Ctrl-C cancels the sweep; the sinks keep the delivered prefix.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var mem vdtn.ExperimentMemorySink
	r := vdtn.Runner{
		Options:  vdtn.ExperimentOptions{ContactCache: &vdtn.ContactCache{}},
		Observer: progress{},
		Sink:     vdtn.TeeExperimentSink(&mem, vdtn.NewExperimentJSONLSink(out)),
	}
	err = r.Run(ctx, exp)
	res := mem.Results()
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Printf("interrupted: %d complete cells kept, JSONL footer records the cut\n", len(res.Cells))
	case err != nil:
		log.Fatal(err)
	}

	// The grid table renders one sub-series per (series, combination);
	// after an interruption it renders whatever groups completed.
	fmt.Println()
	fmt.Println(res.DefaultTable().Render())
	fmt.Printf("streamed %d cells to %s\n", len(res.Cells), outPath)
}
