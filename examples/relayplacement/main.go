// Relayplacement: how much do stationary relay nodes help?
//
// The paper's introduction motivates relay nodes at crossroads: they let
// passing vehicles deposit and pick up messages, increasing contact
// opportunities. This example sweeps the relay count for a fixed scenario
// and shows delivery probability and delay responding — the quantitative
// version of the paper's Figure 1 intuition.
//
//	go run ./examples/relayplacement
package main

import (
	"fmt"
	"log"

	"vdtn"
	"vdtn/internal/units"
)

func main() {
	fmt.Println("Spray-and-Wait/Lifetime, TTL 120 min, 6 simulated hours, varying relays")
	fmt.Printf("\n%7s %14s %12s %10s\n", "relays", "delivery prob", "avg delay", "contacts")

	for _, relays := range []int{0, 2, 5, 8, 10} {
		cfg := vdtn.PaperConfig(120, vdtn.ProtoSprayAndWait, vdtn.PolicyLifetime, 1)
		cfg.Relays = relays
		cfg.Duration = units.Hours(6) // shorter horizon keeps the sweep snappy
		r, err := vdtn.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d %14.3f %9.1f min %10d\n",
			relays, r.DeliveryProbability, r.AvgDelay/60, r.Contacts)
	}

	fmt.Println("\nMore relays -> more contact opportunities; the gain should be")
	fmt.Println("clearest going from 0 to a few relays at well-spread crossroads.")
}
