package vdtn_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles one of the repo's commands into a temp dir.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	build := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startDaemon launches vdtnd on an ephemeral port and waits for the
// bound address. The returned stop function sends SIGTERM and waits for
// a clean exit.
func startDaemon(t *testing.T, bin, dataDir string) (*exec.Cmd, string, func()) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-data-dir", dataDir)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var addr string
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon never wrote its address; stderr:\n%s", &stderr)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop := func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exited uncleanly: %v\nstderr:\n%s", err, &stderr)
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Fatalf("daemon ignored SIGTERM; stderr:\n%s", &stderr)
		}
	}
	return cmd, "http://" + addr, stop
}

// jobMeta is the slice of the job body this test reads.
type jobMeta struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Cells    int    `json:"cells"`
	Done     int    `json:"done"`
	Resumed  int    `json:"resumed"`
	Restarts int    `json:"restarts"`
	Error    string `json:"error"`
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, data)
		}
	}
	return resp.StatusCode
}

// TestServiceKillAndResumeByteIdentical is the daemon's CI smoke gate —
// the service-level twin of TestExperimentsKillAndResumeByteIdentical,
// with one claim on top: cross-surface identity. The golden is written
// by cmd/experiments -out-jsonl; the daemon is SIGKILL'd mid-sweep (no
// flush, no meta transition, nothing), restarted on the same data dir,
// and must finish the job on its own — the re-admitted job resumes from
// the surviving results.jsonl prefix — serving an artifact byte-for-byte
// equal to the CLI's.
func TestServiceKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the real daemon")
	}
	if runtime.GOOS == "windows" {
		t.Skip("no SIGKILL on windows")
	}

	expBin := buildBinary(t, "./cmd/experiments")
	daemonBin := buildBinary(t, "./cmd/vdtnd")
	spec := filepath.Join(t.TempDir(), "heavy-grid.json")
	if err := os.WriteFile(spec, []byte(killSpec), 0o644); err != nil {
		t.Fatal(err)
	}

	// Golden: the CLI's artifact for the same spec.
	goldenDir := filepath.Join(t.TempDir(), "jsonl")
	ref := exec.Command(expBin, "-spec", spec, "-out-jsonl", goldenDir)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("golden CLI run failed: %v\n%s", err, out)
	}
	golden, err := os.ReadFile(filepath.Join(goldenDir, "ttl-copies-grid.jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	dataDir := t.TempDir()
	daemon, base, _ := startDaemon(t, daemonBin, dataDir)

	// Submit the sweep at one worker so it runs long enough to die mid-way.
	body := fmt.Sprintf(`{"spec": %s, "options": {"workers": 1}}`, killSpec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d: %s", resp.StatusCode, sub)
	}
	var job jobMeta
	if err := json.Unmarshal(sub, &job); err != nil {
		t.Fatal(err)
	}

	// Let the sweep get well underway, then kill -9 the whole daemon.
	// Waiting for a dozen of the 48 cells puts the kill past the sink's
	// first bufio flush, so a flushed prefix of results.jsonl survives
	// and the restart genuinely resumes mid-stream rather than starting
	// over.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var m jobMeta
		getJSON(t, base+"/v1/jobs/"+job.ID, &m)
		if m.State == "running" && m.Done >= 12 {
			break
		}
		if m.State == "done" {
			t.Fatal("sweep finished before the kill; killSpec needs retuning")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed; state %q", m.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	stream := filepath.Join(dataDir, "jobs", job.ID, "results.jsonl")
	if cut, err := os.ReadFile(stream); err == nil {
		t.Logf("kill left %d of %d golden bytes", len(cut), len(golden))
	}

	// Restart on the same data dir: the job must be re-admitted, resumed,
	// and finished without any client involvement.
	_, base2, stop2 := startDaemon(t, daemonBin, dataDir)
	deadline = time.Now().Add(120 * time.Second)
	var final jobMeta
	for {
		getJSON(t, base2+"/v1/jobs/"+job.ID, &final)
		if final.State == "done" || final.State == "failed" || final.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after restart", final.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.State != "done" || final.Restarts != 1 || final.Error != "" {
		t.Fatalf("final job = %+v, want done with 1 restart", final)
	}

	// The served artifact equals the CLI's golden byte for byte.
	res, err := http.Get(base2 + "/v1/jobs/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("results = %d, %v", res.StatusCode, err)
	}
	if !bytes.Equal(served, golden) {
		t.Fatalf("daemon artifact differs from the CLI golden\n--- daemon ---\n%s--- cli ---\n%s", served, golden)
	}

	// And the daemon shuts down cleanly when asked nicely.
	stop2()
}

// TestServiceCtlRoundTrip drives the same binary in client mode: submit
// through `vdtnd ctl submit`, wait with `ctl wait`, fetch with
// `ctl results` — the full quickstart, against a live daemon.
func TestServiceCtlRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	daemonBin := buildBinary(t, "./cmd/vdtnd")
	spec, err := filepath.Abs(filepath.Join("examples", "sweeps", "grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	_, base, stop := startDaemon(t, daemonBin, t.TempDir())
	defer stop()
	addr := strings.TrimPrefix(base, "http://")

	ctl := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(daemonBin, append([]string{"ctl"}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("ctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	submitOut := ctl("submit", "-addr", addr, "-spec", spec)
	var job jobMeta
	if err := json.Unmarshal([]byte(submitOut), &job); err != nil {
		t.Fatalf("ctl submit output: %v\n%s", err, submitOut)
	}
	if job.ID == "" || job.Cells != 8 {
		t.Fatalf("submitted job = %+v", job)
	}

	waitOut := ctl("wait", "-addr", addr, job.ID)
	if !strings.Contains(waitOut, "done") {
		t.Fatalf("ctl wait output: %s", waitOut)
	}

	listOut := ctl("list", "-addr", addr)
	if !strings.Contains(listOut, job.ID) || !strings.Contains(listOut, "done") {
		t.Fatalf("ctl list output: %s", listOut)
	}

	results := ctl("results", "-addr", addr, job.ID)
	if !strings.Contains(results, `"format":"vdtn-sweep-jsonl/1"`) {
		t.Fatalf("ctl results missing stream header:\n%s", results)
	}
	if !strings.Contains(results, `"cells":8,"complete":true`) {
		t.Fatalf("ctl results missing complete footer:\n%s", results)
	}
}
