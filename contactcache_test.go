package vdtn_test

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"vdtn"
)

// TestContactCacheSpeedupArtifact measures the contact cache on a
// multi-series, multi-x experiment — fig5's full 3-series × 5-TTL sweep at
// a scaled horizon — and writes the comparison to BENCH_contactcache.json.
// It asserts the two properties the cache promises: the cached table is
// bit-identical to the uncached one, and the cached run is not slower.
// (The committed artifact records the measured speedup; CI regenerates it.)
func TestContactCacheSpeedupArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	exp, ok := vdtn.ExperimentByID("fig5")
	if !ok {
		t.Fatal("fig5 missing from catalog")
	}
	opt := vdtn.ExperimentOptions{Seeds: []uint64{1, 2}, Scale: 0.25}
	cells := len(exp.Scenarios) * len(exp.Xs) * len(opt.Seeds)

	start := time.Now()
	plain := vdtn.RunExperiment(exp, opt)
	uncached := time.Since(start)

	cache := &vdtn.ContactCache{}
	opt.ContactCache = cache
	start = time.Now()
	cached := vdtn.RunExperiment(exp, opt)
	cachedDur := time.Since(start)

	if !reflect.DeepEqual(plain.Series, cached.Series) {
		t.Fatal("cached experiment table diverged from the uncached one")
	}
	speedup := float64(uncached) / float64(cachedDur)
	t.Logf("%d cells: uncached %v, cached %v (%.2fx, %d recording passes)",
		cells, uncached.Round(time.Millisecond), cachedDur.Round(time.Millisecond), speedup, cache.Recorded())
	// Expected speedup is ~4x; the loose bound only catches a genuinely
	// regressed cache, not scheduler noise on shared CI runners.
	if speedup < 0.7 {
		t.Errorf("cached run much slower than uncached: %.2fx", speedup)
	}

	artifact := map[string]any{
		"benchmark":    "contact-trace cache: cached vs uncached experiment run",
		"experiment":   exp.ID,
		"series":       len(exp.Scenarios),
		"x_points":     len(exp.Xs),
		"seeds":        len(opt.Seeds),
		"cells":        cells,
		"scale":        opt.Scale,
		"uncached_ms":  uncached.Milliseconds(),
		"cached_ms":    cachedDur.Milliseconds(),
		"speedup":      speedup,
		"recordings":   cache.Recorded(),
		"tables_equal": true,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_contactcache.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
