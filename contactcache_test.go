package vdtn_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vdtn"
)

// TestContactCacheSpeedupArtifact measures the contact cache on a
// multi-series, multi-x experiment — fig5's full 3-series × 5-TTL sweep at
// a scaled horizon — and writes the comparison to BENCH_contactcache.json:
//
//   - cached vs uncached sweep wall clock (the PR 1 headline number);
//   - prewarmed vs lazy recording schedule (recording passes run in
//     parallel ahead of the sweep vs on first touch inside it);
//   - cache-dir load time for the binary codec vs the text format on the
//     fig5 fleet's persisted traces.
//
// It asserts the properties the cache promises: the cached table is
// bit-identical to the uncached one, the cached run is not slower, and the
// binary codec loads faster than text. (The committed artifact records the
// measured numbers; CI regenerates and uploads it.)
func TestContactCacheSpeedupArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	exp, ok := vdtn.ExperimentByID("fig5")
	if !ok {
		t.Fatal("fig5 missing from catalog")
	}
	opt := vdtn.ExperimentOptions{Seeds: []uint64{1, 2}, Scale: 0.25}
	cells := len(exp.Scenarios) * len(exp.Xs) * len(opt.Seeds)

	start := time.Now()
	plain := vdtn.RunExperiment(exp, opt)
	uncached := time.Since(start)

	// Cached run, persisting the fig5 fleet's traces for the load
	// comparison below.
	ccDir := t.TempDir()
	cache := &vdtn.ContactCache{Dir: ccDir}
	opt.ContactCache = cache
	start = time.Now()
	cached := vdtn.RunExperiment(exp, opt)
	cachedDur := time.Since(start)

	if !reflect.DeepEqual(plain.Series, cached.Series) {
		t.Fatal("cached experiment table diverged from the uncached one")
	}
	speedup := float64(uncached) / float64(cachedDur)
	t.Logf("%d cells: uncached %v, cached %v (%.2fx, %d recording passes)",
		cells, uncached.Round(time.Millisecond), cachedDur.Round(time.Millisecond), speedup, cache.Recorded())
	// Expected speedup is ~4x; the loose bound only catches a genuinely
	// regressed cache, not scheduler noise on shared CI runners.
	if speedup < 0.7 {
		t.Errorf("cached run much slower than uncached: %.2fx", speedup)
	}

	// Lazy vs prewarmed schedule: identical tables, only wall clock moves.
	// Best-of-3 per schedule, so scheduler noise does not drown a ~2 s
	// measurement.
	timedRun := func(lazy bool) (vdtn.ExperimentTable, time.Duration) {
		o := opt
		o.LazyRecord = lazy
		var tbl vdtn.ExperimentTable
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			o.ContactCache = &vdtn.ContactCache{}
			s := time.Now()
			tbl = vdtn.RunExperiment(exp, o)
			if d := time.Since(s); d < best {
				best = d
			}
		}
		return tbl, best
	}
	lazyTbl, lazyDur := timedRun(true)
	warmTbl, warmDur := timedRun(false)
	if !reflect.DeepEqual(lazyTbl.Series, warmTbl.Series) {
		t.Fatal("prewarmed table diverged from the lazy one")
	}
	t.Logf("recording schedule: lazy %v, prewarmed %v",
		lazyDur.Round(time.Millisecond), warmDur.Round(time.Millisecond))
	if float64(warmDur) > 1.5*float64(lazyDur) {
		t.Errorf("prewarmed sweep much slower than the lazy one: %v vs %v", warmDur, lazyDur)
	}

	// Cache-dir load: decode every persisted fig5 trace, binary codec vs
	// the text format, over enough passes for a stable wall clock.
	binFiles, err := filepath.Glob(filepath.Join(ccDir, "*.contactsb"))
	if err != nil || len(binFiles) == 0 {
		t.Fatalf("no persisted binary traces (err %v)", err)
	}
	textDir := t.TempDir()
	for _, f := range binFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := vdtn.DecodeContactRecording(data)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(f), "b") // .contactsb -> .contacts
		if err := os.WriteFile(filepath.Join(textDir, name), []byte(rec.Format()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The file list is enumerated once, outside the timed passes: the
	// comparison targets read+decode cost, which is what the text format
	// dominates on large fleets.
	listDir := func(dir string) []string {
		files, err := filepath.Glob(filepath.Join(dir, "*.contacts*"))
		if err != nil || len(files) == 0 {
			t.Fatalf("no traces under %s (err %v)", dir, err)
		}
		return files
	}
	loadFiles := func(files []string) int {
		transitions := 0
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := vdtn.DecodeContactRecording(data)
			if err != nil {
				t.Fatal(err)
			}
			transitions += len(rec.Transitions)
		}
		return transitions
	}
	textFiles, binDirFiles := listDir(textDir), listDir(ccDir)
	const loadPasses = 40
	start = time.Now()
	textTransitions := 0
	for i := 0; i < loadPasses; i++ {
		textTransitions = loadFiles(textFiles)
	}
	textLoad := time.Since(start)
	start = time.Now()
	binTransitions := 0
	for i := 0; i < loadPasses; i++ {
		binTransitions = loadFiles(binDirFiles)
	}
	binLoad := time.Since(start)
	if textTransitions != binTransitions {
		t.Fatalf("formats decoded different traces: %d vs %d transitions", textTransitions, binTransitions)
	}
	loadSpeedup := float64(textLoad) / float64(binLoad)
	t.Logf("cache-dir load (%d traces, %d transitions, %d passes): text %v, binary %v (%.2fx)",
		len(binFiles), binTransitions, loadPasses,
		textLoad.Round(time.Millisecond), binLoad.Round(time.Millisecond), loadSpeedup)
	// The issue target is >= 3x; gate CI at 2x to absorb runner noise
	// while still catching a real codec regression.
	if loadSpeedup < 2 {
		t.Errorf("binary cache load only %.2fx faster than text, want >= 3x nominal", loadSpeedup)
	}

	artifact := map[string]any{
		"benchmark":        "contact-trace cache: cached vs uncached experiment run",
		"experiment":       exp.ID,
		"series":           len(exp.Scenarios),
		"x_points":         len(exp.Xs),
		"seeds":            len(opt.Seeds),
		"cells":            cells,
		"scale":            opt.Scale,
		"uncached_ms":      uncached.Milliseconds(),
		"cached_ms":        cachedDur.Milliseconds(),
		"speedup":          speedup,
		"recordings":       cache.Recorded(),
		"tables_equal":     true,
		"lazy_ms":          lazyDur.Milliseconds(),
		"prewarmed_ms":     warmDur.Milliseconds(),
		"load_passes":      loadPasses,
		"load_traces":      len(binFiles),
		"load_transitions": binTransitions,
		"text_load_ms":     textLoad.Milliseconds(),
		"binary_load_ms":   binLoad.Milliseconds(),
		"load_speedup":     loadSpeedup,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_contactcache.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
