package vdtn_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vdtn"
)

// TestContactCacheSpeedupArtifact measures the contact cache on a
// multi-series, multi-x experiment — fig5's full 3-series × 5-TTL sweep at
// a scaled horizon — and writes the comparison to BENCH_contactcache.json:
//
//   - cached vs uncached sweep wall clock (the PR 1 headline number);
//   - prewarmed vs lazy recording schedule (recording passes run in
//     parallel ahead of the sweep vs on first touch inside it);
//   - cache-dir load time for the binary codec vs the text format on the
//     fig5 fleet's persisted traces;
//   - mmap view open vs binary slurp on the same traces, and the per-cell
//     replay-preparation allocations of both paths.
//
// It asserts the properties the cache promises: the cached and mmap-served
// tables are bit-identical to the uncached one, the cached run is not
// slower, the binary codec loads faster than text, the mmap view opens no
// slower than the binary slurp, and view replay allocates less per cell.
// (The committed artifact records the measured numbers; CI regenerates and
// uploads it.)
func TestContactCacheSpeedupArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	exp, ok := vdtn.ExperimentByID("fig5")
	if !ok {
		t.Fatal("fig5 missing from catalog")
	}
	opt := vdtn.ExperimentOptions{Seeds: []uint64{1, 2}, Scale: 0.25}
	cells := len(exp.Scenarios) * len(exp.Xs) * len(opt.Seeds)

	start := time.Now()
	plainRes, err := vdtn.RunExperimentE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	uncached := time.Since(start)
	plain := plainRes.DefaultTable()

	// Cached run, persisting the fig5 fleet's traces for the load
	// comparison below.
	ccDir := t.TempDir()
	cache := &vdtn.ContactCache{Dir: ccDir}
	opt.ContactCache = cache
	start = time.Now()
	cachedRes, err := vdtn.RunExperimentE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	cachedDur := time.Since(start)

	if !reflect.DeepEqual(plain.Series, cachedRes.DefaultTable().Series) {
		t.Fatal("cached experiment table diverged from the uncached one")
	}

	// Mmap-served sweep over the persisted traces: bit-identical table,
	// zero re-recordings.
	mmapCache := &vdtn.ContactCache{Dir: ccDir, Mmap: true}
	mopt := opt
	mopt.ContactCache = mmapCache
	mappedRes, err := vdtn.RunExperimentE(exp, mopt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Series, mappedRes.DefaultTable().Series) {
		t.Fatal("mmap-served experiment table diverged from the uncached one")
	}
	if mmapCache.Recorded() != 0 {
		t.Fatalf("mmap sweep re-recorded %d traces despite the persisted cache", mmapCache.Recorded())
	}
	mmapCache.Close()
	speedup := float64(uncached) / float64(cachedDur)
	t.Logf("%d cells: uncached %v, cached %v (%.2fx, %d recording passes)",
		cells, uncached.Round(time.Millisecond), cachedDur.Round(time.Millisecond), speedup, cache.Recorded())
	// Expected speedup is ~4x; the loose bound only catches a genuinely
	// regressed cache, not scheduler noise on shared CI runners.
	if speedup < 0.7 {
		t.Errorf("cached run much slower than uncached: %.2fx", speedup)
	}

	// Lazy vs prewarmed schedule: identical tables, only wall clock moves.
	// Best-of-3 per schedule, so scheduler noise does not drown a ~2 s
	// measurement.
	timedRun := func(lazy bool) (vdtn.ExperimentTable, time.Duration) {
		o := opt
		o.LazyRecord = lazy
		var tbl vdtn.ExperimentTable
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			o.ContactCache = &vdtn.ContactCache{}
			s := time.Now()
			res, err := vdtn.RunExperimentE(exp, o)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(s); d < best {
				best = d
			}
			tbl = res.DefaultTable()
		}
		return tbl, best
	}
	lazyTbl, lazyDur := timedRun(true)
	warmTbl, warmDur := timedRun(false)
	if !reflect.DeepEqual(lazyTbl.Series, warmTbl.Series) {
		t.Fatal("prewarmed table diverged from the lazy one")
	}
	t.Logf("recording schedule: lazy %v, prewarmed %v",
		lazyDur.Round(time.Millisecond), warmDur.Round(time.Millisecond))
	if float64(warmDur) > 1.5*float64(lazyDur) {
		t.Errorf("prewarmed sweep much slower than the lazy one: %v vs %v", warmDur, lazyDur)
	}

	// Cache-dir load: decode every persisted fig5 trace, binary codec vs
	// the text format, over enough passes for a stable wall clock. Traces
	// live in the sharded layout.
	binFiles, err := filepath.Glob(filepath.Join(ccDir, "??", "*.contactsb"))
	if err != nil || len(binFiles) == 0 {
		t.Fatalf("no persisted binary traces (err %v)", err)
	}
	textDir := t.TempDir()
	for _, f := range binFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := vdtn.DecodeContactRecording(data)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(f), "b") // .contactsb -> .contacts
		if err := os.WriteFile(filepath.Join(textDir, name), []byte(rec.Format()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The file lists are enumerated once, outside the timed passes: the
	// comparison targets read+decode cost, which is what the text format
	// dominates on large fleets.
	textFiles, err := filepath.Glob(filepath.Join(textDir, "*.contacts"))
	if err != nil || len(textFiles) == 0 {
		t.Fatalf("no text traces under %s (err %v)", textDir, err)
	}
	loadFiles := func(files []string) int {
		transitions := 0
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := vdtn.DecodeContactRecording(data)
			if err != nil {
				t.Fatal(err)
			}
			transitions += len(rec.Transitions)
		}
		return transitions
	}
	// One untimed pass per loader warms the page cache and code paths, so
	// the timed passes compare steady-state decode cost, not first-touch
	// I/O; 100 passes keep millisecond rounding from drowning the ~100 µs
	// per-pass differences.
	const loadPasses = 100
	loadFiles(textFiles)
	loadFiles(binFiles)
	start = time.Now()
	textTransitions := 0
	for i := 0; i < loadPasses; i++ {
		textTransitions = loadFiles(textFiles)
	}
	textLoad := time.Since(start)
	start = time.Now()
	binTransitions := 0
	for i := 0; i < loadPasses; i++ {
		binTransitions = loadFiles(binFiles)
	}
	binLoad := time.Since(start)
	if textTransitions != binTransitions {
		t.Fatalf("formats decoded different traces: %d vs %d transitions", textTransitions, binTransitions)
	}
	loadSpeedup := float64(textLoad) / float64(binLoad)
	t.Logf("cache-dir load (%d traces, %d transitions, %d passes): text %v, binary %v (%.2fx)",
		len(binFiles), binTransitions, loadPasses,
		textLoad.Round(time.Millisecond), binLoad.Round(time.Millisecond), loadSpeedup)
	// The issue target is >= 3x; gate CI at 2x to absorb runner noise
	// while still catching a real codec regression.
	if loadSpeedup < 2 {
		t.Errorf("binary cache load only %.2fx faster than text, want >= 3x nominal", loadSpeedup)
	}

	// Mmap view open vs binary slurp over the same files: the view runs
	// the identical integrity + structural pass but never materializes the
	// transition slice, so getting a replay-ready source from the page
	// cache must be no slower than decoding one into the heap.
	loadViews := func() int {
		transitions := 0
		for _, f := range binFiles {
			v, err := vdtn.OpenContactRecordingView(f)
			if err != nil {
				t.Fatal(err)
			}
			transitions += v.Len()
			v.Close()
		}
		return transitions
	}
	loadViews() // warm, matching the slurp loaders
	start = time.Now()
	mmapTransitions := 0
	for i := 0; i < loadPasses; i++ {
		mmapTransitions = loadViews()
	}
	mmapLoad := time.Since(start)
	if mmapTransitions != binTransitions {
		t.Fatalf("mmap views saw %d transitions, slurp %d", mmapTransitions, binTransitions)
	}
	mmapVsSlurp := float64(binLoad) / float64(mmapLoad)
	t.Logf("replay-source load (%d passes): binary slurp %v, mmap view %v (view %.2fx vs slurp)",
		loadPasses, binLoad.Round(time.Millisecond), mmapLoad.Round(time.Millisecond), mmapVsSlurp)
	// Gate "no slower" with headroom for shared-runner noise.
	if float64(mmapLoad) > 1.25*float64(binLoad) {
		t.Errorf("mmap view load %v much slower than binary slurp %v", mmapLoad, binLoad)
	}

	// Per-cell replay preparation: the slurp path re-validates the shared
	// recording inside every cell's Config.Validate (pair-state bitmap and
	// all) before taking a cursor; a view validated once at open hands
	// each cell just a cursor.
	recData, err := os.ReadFile(binFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	sharedRec, err := vdtn.DecodeContactRecording(recData)
	if err != nil {
		t.Fatal(err)
	}
	sharedView, err := vdtn.OpenContactRecordingView(binFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	defer sharedView.Close()
	cellSlurpAllocs := testing.AllocsPerRun(200, func() {
		if err := sharedRec.Validate(); err != nil {
			panic(err)
		}
		_ = sharedRec.Cursor()
	})
	cellMmapAllocs := testing.AllocsPerRun(200, func() {
		_ = sharedView.Cursor()
	})
	t.Logf("per-cell replay prep allocations: slurp %.0f, mmap view %.0f", cellSlurpAllocs, cellMmapAllocs)
	if cellMmapAllocs >= cellSlurpAllocs {
		t.Errorf("view replay does not reduce per-cell allocations: slurp %.0f, view %.0f",
			cellSlurpAllocs, cellMmapAllocs)
	}

	artifact := map[string]any{
		"benchmark":        "contact-trace cache: cached vs uncached experiment run",
		"experiment":       exp.ID,
		"series":           len(exp.Scenarios),
		"x_points":         len(exp.Xs),
		"seeds":            len(opt.Seeds),
		"cells":            cells,
		"scale":            opt.Scale,
		"uncached_ms":      uncached.Milliseconds(),
		"cached_ms":        cachedDur.Milliseconds(),
		"speedup":          speedup,
		"recordings":       cache.Recorded(),
		"tables_equal":     true,
		"lazy_ms":          lazyDur.Milliseconds(),
		"prewarmed_ms":     warmDur.Milliseconds(),
		"load_passes":      loadPasses,
		"load_traces":      len(binFiles),
		"load_transitions": binTransitions,
		"text_load_ms":     textLoad.Milliseconds(),
		"binary_load_ms":   binLoad.Milliseconds(),
		"load_speedup":     loadSpeedup,

		"tables_equal_mmap":        true,
		"mmap_load_ms":             mmapLoad.Milliseconds(),
		"mmap_vs_slurp_speedup":    mmapVsSlurp,
		"replay_cell_allocs_slurp": cellSlurpAllocs,
		"replay_cell_allocs_mmap":  cellMmapAllocs,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_contactcache.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
