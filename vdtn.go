// Package vdtn is a discrete-event simulator for Vehicular Delay-Tolerant
// Networks, reproducing Soares et al., "Improvement of Messages Delivery
// Time on Vehicular Delay-Tolerant Networks" (ICPP 2009).
//
// It provides:
//
//   - the paper's contribution — pluggable buffer scheduling and dropping
//     policies (FIFO, Random, Lifetime DESC/ASC) enforced on Epidemic and
//     binary Spray-and-Wait routing;
//   - full reimplementations of the MaxProp and PRoPHET (GRTRMax) routing
//     protocols the paper compares against, plus DirectDelivery and
//     FirstContact baselines;
//   - the complete simulation substrate: road-map graph with shortest
//     paths, map-constrained vehicle mobility, disk-range radio contacts
//     with finite-rate transfers, capacity-bounded buffers with TTL
//     expiry, and a deterministic event engine;
//   - an experiment harness that regenerates every figure of the paper's
//     evaluation and several ablations.
//
// # Quick start
//
//	cfg := vdtn.PaperConfig(120, vdtn.ProtoEpidemic, vdtn.PolicyLifetime, 1)
//	result, err := vdtn.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(result.Report)
//
// Runs are deterministic: identical (Config, Seed) pairs produce identical
// Results. See the examples directory for scenario customization and for
// plugging in a custom routing protocol.
//
// # Contact recording and replay
//
// A run's contact process — when node pairs enter and leave radio range —
// depends only on the seed, the map, the fleet and the mobility and radio
// parameters, never on traffic or routing. Config.ContactSource exploits
// that:
//
//   - ContactLive (default): contacts come from proximity scanning over
//     the mobility models, as in the paper.
//   - ContactRecord: run live and capture every contact transition into
//     Config.Recording.
//   - ContactReplay: drive contacts from Config.Recording instead of
//     mobility. A replayed run is bit-identical to the live run that
//     recorded the trace — same Result, same event trace — but skips all
//     position and proximity work.
//
// RecordContacts produces the trace from mobility alone (no routing, no
// traffic) at a fraction of a full run's cost. The experiment harness
// builds on this: ExperimentOptions.ContactCache records each distinct
// (scenario, seed) mobility process once — keyed by ContactFingerprint —
// and replays it for every series and x-axis cell that shares it, making
// multi-cell sweeps several times faster with provably unchanged results.
//
//	cache := &vdtn.ContactCache{}
//	opt := vdtn.ExperimentOptions{Seeds: []uint64{1, 2, 3}, ContactCache: cache}
//	res, err := vdtn.RunExperimentE(exp, opt) // identical to the uncached results
//
// # Cancellation, observation, and result sinks
//
// Long work is context-aware: RunContext cancels a single run at an
// event-loop checkpoint (deterministically — never a torn Result), and
// the sweep Runner adds progress observation (ExperimentObserver) and
// pluggable result storage (ExperimentSink: in-memory, streaming JSONL
// for sweeps too large for RAM, or a tee of both):
//
//	var mem vdtn.ExperimentMemorySink
//	r := vdtn.Runner{Options: opt, Sink: &mem}
//	if err := r.Run(ctx, exp); err != nil { ... } // ctx.Err() when cancelled
//	res := mem.Results() // complete cells delivered before the cut
package vdtn

import (
	"context"
	"io"

	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/contactplan"
	"vdtn/internal/core"
	"vdtn/internal/experiments"
	"vdtn/internal/reports"
	"vdtn/internal/routing"
	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/stats"
	"vdtn/internal/trace"
	"vdtn/internal/wireless"
	"vdtn/internal/xrand"
)

// Core simulation types.
type (
	// Config fully describes a scenario; see DefaultConfig and PaperConfig.
	Config = sim.Config
	// Result is the outcome of one run.
	Result = sim.Result
	// Report is the metric block inside a Result.
	Report = stats.Report
	// World is an assembled scenario; use NewWorld for stepping access,
	// or Run for the common build-and-run path.
	World = sim.World
	// ProtocolKind selects the routing protocol.
	ProtocolKind = sim.ProtocolKind
	// PolicyKind selects the combined scheduling-dropping policy.
	PolicyKind = sim.PolicyKind
)

// Routing extension points: implement Router (and receive Peer views) to
// plug a custom protocol into Config.NewRouter. The remaining aliases are
// the types a Router implementation touches: its node buffer, the message
// replicas in it, and the deterministic random stream the simulator hands
// each node.
type (
	// Router is the routing-protocol interface.
	Router = routing.Router
	// Peer is a router's view of a connected remote node.
	Peer = routing.Peer
	// Send is one transmission decision.
	Send = routing.Send
	// Buffer is a node's capacity-bounded message store.
	Buffer = buffer.Store
	// Message is one replica of a DTN bundle.
	Message = bundle.Message
	// MessageID identifies a message across all replicas.
	MessageID = bundle.ID
	// Rand is the per-node deterministic random stream.
	Rand = xrand.Rand
	// SchedulingPolicy orders transmissions at a contact.
	SchedulingPolicy = core.SchedulingPolicy
	// DropPolicy picks buffer-overflow victims.
	DropPolicy = core.DropPolicy
)

// Drop-policy constructors for custom routers.
func NewFIFODrop() DropPolicy        { return core.FIFODrop{} }
func NewLifetimeASCDrop() DropPolicy { return core.LifetimeASCDrop{} }

// Protocols.
const (
	ProtoEpidemic            = sim.ProtoEpidemic
	ProtoSprayAndWait        = sim.ProtoSprayAndWait
	ProtoSprayAndWaitVanilla = sim.ProtoSprayAndWaitVanilla
	ProtoMaxProp             = sim.ProtoMaxProp
	ProtoPRoPHET             = sim.ProtoPRoPHET
	ProtoDirectDelivery      = sim.ProtoDirectDelivery
	ProtoFirstContact        = sim.ProtoFirstContact
)

// Policies: the paper's Table I, then the extended literature policies.
const (
	PolicyFIFOFIFO      = sim.PolicyFIFOFIFO
	PolicyRandomFIFO    = sim.PolicyRandomFIFO
	PolicyLifetime      = sim.PolicyLifetime
	PolicySize          = sim.PolicySize
	PolicyHopMOFO       = sim.PolicyHopMOFO
	PolicyFIFOOldestAge = sim.PolicyFIFOOldestAge
)

// DefaultConfig returns the paper's scenario (§III): 40 vehicles and 5
// relays on a Helsinki-like map, 802.11b radios, 12 simulated hours.
func DefaultConfig() Config { return sim.DefaultConfig() }

// PaperConfig returns the paper scenario at one evaluation point.
func PaperConfig(ttlMinutes float64, proto ProtocolKind, pol PolicyKind, seed uint64) Config {
	return sim.PaperConfig(ttlMinutes, proto, pol, seed)
}

// NewWorld assembles a scenario for inspection or stepping.
func NewWorld(cfg Config) (*World, error) { return sim.New(cfg) }

// Run assembles and runs a scenario to completion.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext assembles and runs a scenario under ctx. Cancellation is
// cooperative and deterministic: the run stops between two events of the
// simulation's deterministic event order — never inside one — and
// returns ctx.Err() with a zero Result, so a caller can never observe a
// torn half-run Result. Everything traced before the cut is a prefix of
// the uninterrupted run's trace. A run whose final event fires before
// the cancellation is noticed completes normally.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	w, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	return w.RunContext(ctx)
}

// Contact-plan mode: drive connectivity from an explicit schedule (a
// recorded vehicular connectivity trace or a scripted topology) instead of
// mobility and radio range. Assign a plan to Config.Plan and optionally
// script exact traffic via Config.Script.
type (
	// ContactPlan is a validated, time-ordered contact schedule.
	ContactPlan = contactplan.Plan
	// Contact is one scheduled window between two nodes.
	Contact = contactplan.Contact
	// ScriptedMessage is one deterministic traffic entry.
	ScriptedMessage = sim.ScriptedMessage
)

// NewContactPlan validates and normalizes a contact list.
func NewContactPlan(contacts []Contact) (*ContactPlan, error) {
	return contactplan.New(contacts)
}

// ParseContactPlan reads the "start end nodeA nodeB" text format.
func ParseContactPlan(text string) (*ContactPlan, error) {
	return contactplan.Parse(text)
}

// Contact recording and replay: capture a live run's contact transitions
// and re-drive later runs from the trace, bit-identically (see the package
// comment). Select via Config.ContactSource and Config.Recording.
type (
	// ContactRecording is a captured contact transition trace.
	ContactRecording = wireless.Recording
	// ContactTransition is one recorded contact state change.
	ContactTransition = wireless.Transition
	// ContactSource selects live scanning, recording, or replay.
	ContactSource = sim.ContactSource
	// ContactCache memoizes recorded traces by scenario fingerprint for
	// the experiment harness (ExperimentOptions.ContactCache). With Dir
	// set it persists traces in a sharded, index-fronted directory; with
	// Mmap also set it serves them as zero-copy ContactRecordingView
	// values, and MaxBytes bounds the store with LRU eviction.
	ContactCache = experiments.ContactCache
	// ContactReplaySource is a contact trace a replay run can consume:
	// either an in-memory *ContactRecording or a *ContactRecordingView.
	// Assign one to Config.ReplaySource (with ContactSource ContactReplay).
	ContactReplaySource = wireless.ReplaySource
	// ContactRecordingView is a read-only mmap-backed view of a persisted
	// binary trace: validated once at open, replayed with zero per-run
	// trace allocation, shareable across concurrent runs and — through
	// the page cache — across processes.
	ContactRecordingView = wireless.RecordingView
	// ContactRecordingReader streams a binary trace transition by
	// transition without materializing it (for traces too large to slurp).
	ContactRecordingReader = wireless.RecordingReader
	// ContactRecordingMeta is a trace's fixed-size description (scan
	// interval, horizon, transition count).
	ContactRecordingMeta = wireless.RecordingMeta
)

// Contact sources.
const (
	ContactLive   = sim.ContactLive
	ContactRecord = sim.ContactRecord
	ContactReplay = sim.ContactReplay
)

// Contact-cache event kinds delivered to experiment observers.
const (
	ExperimentCacheHit      = experiments.CacheHit
	ExperimentCacheHitDisk  = experiments.CacheHitDisk
	ExperimentCacheRecorded = experiments.CacheRecorded
)

// RecordContacts simulates only cfg's mobility and proximity layer and
// returns the contact trace a full live run would record.
func RecordContacts(cfg Config) (*ContactRecording, error) { return sim.RecordContacts(cfg) }

// RecordContactsContext is RecordContacts checking ctx between events:
// cancellation stops the recording pass promptly at an event boundary and
// returns ctx.Err() with no recording — a torn trace never escapes.
func RecordContactsContext(ctx context.Context, cfg Config) (*ContactRecording, error) {
	return sim.RecordContactsContext(ctx, cfg)
}

// ParseContactRecording reads the text form written by
// ContactRecording.Format. The "end <count>" trailer is required so a
// truncated file is detected; use DecodeContactRecordingLegacy for files
// written before the trailer existed.
func ParseContactRecording(text string) (*ContactRecording, error) {
	return wireless.ParseRecording(text)
}

// EncodeContactRecordingBinary renders rec in the integrity-checked binary
// codec (magic + version header, varint-delta transition stream, count and
// CRC32 footer) — the format the contact cache persists, several times
// faster to load than the text form.
func EncodeContactRecordingBinary(rec *ContactRecording) []byte {
	return wireless.EncodeBinary(rec)
}

// DecodeContactRecording reads a persisted contact trace in either the
// binary or the text format, sniffing by magic. Truncated or corrupt data
// in either format is reported as an error, never decoded as a shorter
// trace.
func DecodeContactRecording(data []byte) (*ContactRecording, error) {
	return wireless.DecodeRecording(data)
}

// DecodeContactRecordingLegacy decodes like DecodeContactRecording but
// tolerates text traces written before the "end <count>" trailer existed;
// warn (if non-nil) is told that such a file's truncation cannot be
// detected.
func DecodeContactRecordingLegacy(data []byte, warn func(msg string)) (*ContactRecording, error) {
	return wireless.DecodeRecordingLegacy(data, warn)
}

// OpenContactRecordingView memory-maps the binary trace at path and
// validates it once (CRC32, count, structural rules — everything
// DecodeContactRecording checks). The returned view replays bit-identically
// to the decoded recording; Close releases the mapping.
func OpenContactRecordingView(path string) (*ContactRecordingView, error) {
	return wireless.OpenRecordingView(path)
}

// OpenContactRecording opens the binary trace at path for incremental
// streaming — transitions decode one at a time, integrity-checked, without
// ever materializing the trace.
func OpenContactRecording(path string) (*ContactRecordingReader, error) {
	return wireless.OpenRecording(path)
}

// RecordingPlan converts a recording into a contact plan (open contacts
// are closed at the trace horizon).
func RecordingPlan(rec *ContactRecording) (*ContactPlan, error) { return sim.RecordingPlan(rec) }

// ContactFingerprint returns the stable key identifying cfg's contact
// process — what ContactCache keys recorded traces on.
func ContactFingerprint(cfg Config) string { return scenario.ContactFingerprint(cfg) }

// Tracing and offline analysis. Install a consumer via Config.Trace:
//
//	var lg vdtn.TraceLog
//	cfg.Trace = lg.Append
//	vdtn.Run(cfg)
//	analysis := vdtn.AnalyzeTrace(lg.Events(), cfg.Duration)
type (
	// TraceEvent is one simulation event record.
	TraceEvent = trace.Event
	// TraceKind enumerates event kinds (TraceContactUp, ...).
	TraceKind = trace.Kind
	// TraceLog is an in-memory trace consumer.
	TraceLog = trace.Log
	// TraceWriter streams events as TSV.
	TraceWriter = trace.Writer
	// TraceAnalysis is the offline report derived from a trace.
	TraceAnalysis = reports.Analysis
)

// Trace event kinds.
const (
	TraceContactUp        = trace.ContactUp
	TraceContactDown      = trace.ContactDown
	TraceTransferStart    = trace.TransferStart
	TraceTransferComplete = trace.TransferComplete
	TraceTransferAbort    = trace.TransferAbort
	TraceCreated          = trace.Created
	TraceDelivered        = trace.Delivered
	TraceRelayAccepted    = trace.RelayAccepted
	TraceRelayRejected    = trace.RelayRejected
	TraceDropped          = trace.Dropped
	TraceExpired          = trace.Expired
)

// NewTraceWriter returns a streaming TSV trace consumer writing to w;
// install its Emit method as Config.Trace.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// AnalyzeTrace derives contact statistics, transfer outcomes, message
// fates and delivery paths from a recorded event stream.
func AnalyzeTrace(events []TraceEvent, horizon float64) *TraceAnalysis {
	return reports.Analyze(events, horizon)
}

// TopContactPairs returns the k node pairs with the most contacts.
func TopContactPairs(events []TraceEvent, k int) [][2]int {
	return reports.TopPairs(events, k)
}

// Experiment harness re-exports: the declarative sweep engine that
// regenerates the paper's figures and runs user-defined sweeps from JSON
// specs.
type (
	// Experiment is one reproducible sweep: a figure, an ablation, or a
	// loaded spec — series swept over one named axis.
	Experiment = experiments.Experiment
	// ExperimentScenario is one series of an experiment.
	ExperimentScenario = experiments.Scenario
	// ExperimentSetting is one fixed, declarative axis assignment.
	ExperimentSetting = experiments.Setting
	// ExperimentGridAxis is one secondary swept dimension of a multi-axis
	// grid sweep (Experiment.Grid); cells are the cross-product of the
	// primary axis and every grid axis.
	ExperimentGridAxis = experiments.GridAxis
	// ExperimentOptions controls replication, parallelism and scale.
	ExperimentOptions = experiments.Options
	// Runner executes sweeps with cooperative cancellation, progress
	// observation, and pluggable result sinks — the composable successor
	// of the fire-and-forget run calls.
	Runner = experiments.Runner
	// ExperimentObserver receives a running sweep's lifecycle events
	// (cells starting and finishing with timing, contact-cache traffic).
	// Embed ExperimentBaseObserver to implement only some of them.
	ExperimentObserver = experiments.Observer
	// ExperimentBaseObserver is the no-op observer for embedding.
	ExperimentBaseObserver = experiments.BaseObserver
	// ExperimentProgressObserver renders a running sweep as a single live
	// cell counter line with elapsed time and ETA — the observer behind
	// cmd/experiments -progress and the vdtnd daemon's progress echo.
	ExperimentProgressObserver = experiments.ProgressObserver
	// ExperimentCellID identifies one cell in observer progress reports.
	ExperimentCellID = experiments.CellID
	// ExperimentCacheEvent is one contact-cache lookup outcome delivered
	// to observers (hit, disk load, or an executed recording pass).
	ExperimentCacheEvent = experiments.CacheEvent
	// ExperimentCacheEventKind classifies a cache event.
	ExperimentCacheEventKind = experiments.CacheEventKind
	// ExperimentSink consumes a sweep's finished cells in deterministic
	// aggregation order (see experiments.ResultSink for the contract).
	ExperimentSink = experiments.ResultSink
	// ExperimentMemorySink accumulates delivered cells into an
	// ExperimentResults — the default sink behind RunExperimentE.
	ExperimentMemorySink = experiments.MemorySink
	// ExperimentJSONLSink streams cells as JSON lines for sweeps too
	// large to hold in memory; see NewExperimentJSONLSink.
	ExperimentJSONLSink = experiments.JSONLSink
	// ExperimentResults stores every cell's complete Result; Table
	// renders any metric view, JSON emits the machine-readable artifact.
	ExperimentResults = experiments.Results
	// ExperimentCellResult is one (series, x, seed) cell's full outcome.
	ExperimentCellResult = experiments.CellResult
	// ExperimentSweepPrefix is the validated complete-cell prefix of a
	// JSONL sweep stream — what ReadExperimentJSONLPrefix recovers from an
	// interrupted run and Runner.ResumeFrom finishes without re-simulating.
	ExperimentSweepPrefix = experiments.SweepPrefix
	// ExperimentTable is one metric view with rendering helpers.
	ExperimentTable = experiments.Table
	// ExperimentMetric names one scalar view of a run result.
	ExperimentMetric = experiments.Metric
	// ExperimentRegistry merges the built-in catalog with loaded specs.
	ExperimentRegistry = experiments.Registry
	// SweepAxis is a named, serializable swept parameter.
	SweepAxis = scenario.Axis
)

// The metrics sweeps report; any of them can be rendered from one
// finished ExperimentResults (see experiments.Metrics for the full list).
const (
	MetricAvgDelayMin  = experiments.MetricAvgDelayMin
	MetricDeliveryProb = experiments.MetricDeliveryProb
	MetricOverhead     = experiments.MetricOverhead
)

// ExperimentMetrics lists every known metric identifier.
func ExperimentMetrics() []ExperimentMetric { return experiments.Metrics() }

// Experiments returns the built-in catalog: the paper's Figures 4-9 and
// the ablations described in DESIGN.md, expressed on the named sweep
// axes.
func Experiments() []Experiment { return experiments.Catalog() }

// ExperimentByID finds one built-in experiment ("fig4" ... "fig9",
// "ablation-rate", ...).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// NewExperimentRegistry returns a registry preloaded with the built-in
// catalog; add user specs with AddSpec.
func NewExperimentRegistry() *ExperimentRegistry { return experiments.NewRegistry() }

// LoadExperimentSpec parses an on-disk sweep spec — a scenario JSON file
// with "sweep" and "series" blocks (see docs/SWEEPS.md) — into a runnable
// Experiment.
func LoadExperimentSpec(data []byte) (Experiment, error) { return experiments.LoadSpec(data) }

// ExperimentSpecJSON renders an experiment back into the spec schema;
// built-in figures export as self-contained files that reload
// bit-identically.
func ExperimentSpecJSON(e Experiment) ([]byte, error) { return experiments.SpecJSON(e) }

// SweepAxes returns every registered axis, sorted by name.
func SweepAxes() []SweepAxis { return scenario.Axes() }

// SweepAxisByName looks an axis up by its stable name ("ttl_min",
// "vehicles", ...).
func SweepAxisByName(name string) (SweepAxis, bool) { return scenario.AxisByName(name) }

// NewSweepAxis builds a custom axis; register it with RegisterSweepAxis
// to use it in experiment definitions and spec files.
func NewSweepAxis(name, label string, movesContacts bool, apply func(c *Config, v float64)) SweepAxis {
	return scenario.NewAxis(name, label, movesContacts, apply)
}

// RegisterSweepAxis adds a custom axis to the registry.
func RegisterSweepAxis(a SweepAxis) error { return scenario.RegisterAxis(a) }

// NewExperimentJSONLSink returns a sink streaming a sweep's cells as
// JSON lines to w: a header identifying the sweep, one line per cell in
// deterministic aggregation order, and a footer recording the cell count
// and outcome. The caller keeps ownership of w.
func NewExperimentJSONLSink(w io.Writer) *ExperimentJSONLSink {
	return experiments.NewJSONLSink(w)
}

// NewExperimentJSONLSinkResume returns a JSONL sink appending to a stream
// that already holds prefix (truncated after prefix.Offset): the header
// and the prefix's cell lines are counted but not re-written, so the
// finished stream is byte-identical to an uninterrupted run's. Pair it
// with Runner.ResumeFrom set to the same prefix.
func NewExperimentJSONLSinkResume(w io.Writer, prefix *ExperimentSweepPrefix) *ExperimentJSONLSink {
	return experiments.NewJSONLSinkResume(w, prefix)
}

// ReadExperimentJSONLPrefix decodes a JSONL sweep stream written for exp
// under opt and returns its clean complete-cell prefix: the reader side
// of the JSONL format, tolerant of exactly the damage a crash inflicts (a
// truncated trailing line) and strict about everything else — a stream
// from a different sweep, seed list, or scale is refused, never silently
// resumed. See ExperimentSweepPrefix for how the prefix drives a resume.
func ReadExperimentJSONLPrefix(data []byte, exp Experiment, opt ExperimentOptions) (*ExperimentSweepPrefix, error) {
	return experiments.ReadJSONLPrefix(data, exp, opt)
}

// TeeExperimentSink duplicates every delivered cell to each sink: render
// tables from a memory sink while a JSONL sink archives the same sweep.
func TeeExperimentSink(sinks ...ExperimentSink) ExperimentSink {
	return experiments.TeeSink(sinks...)
}

// RunExperimentE executes an experiment to completion and stores every
// cell's complete Result, reporting the first failing cell — with its
// (series, grid, x, seed) coordinates — as an error instead of
// panicking. Render tables from the returned Results via DefaultTable or
// Table(metric). It is the uncancellable convenience form of Runner.Run
// with a memory sink; use a Runner directly for cancellation, progress
// observation, or streaming sinks.
func RunExperimentE(e Experiment, opt ExperimentOptions) (*ExperimentResults, error) {
	return experiments.RunE(e, opt)
}

// ExperimentCellConfigs returns the fully materialized configuration of
// every (series, x, seed) cell of the sweep — the input
// ContactCache.Prewarm wants when pre-recording contact traces across
// several experiments before any of them runs.
func ExperimentCellConfigs(e Experiment, opt ExperimentOptions) ([]Config, error) {
	return experiments.CellConfigs(e, opt)
}
