package vdtn_test

import (
	"testing"

	"vdtn"
	"vdtn/internal/roadmap"
	"vdtn/internal/units"
)

// smallConfig shrinks the paper scenario for fast public-API tests.
func smallConfig(seed uint64) vdtn.Config {
	cfg := vdtn.PaperConfig(30, vdtn.ProtoEpidemic, vdtn.PolicyLifetime, seed)
	cfg.Duration = units.Hours(1)
	cfg.Map = roadmap.Grid(5, 5, 300)
	cfg.Vehicles = 10
	cfg.Relays = 1
	cfg.VehicleBuffer = units.MB(20)
	cfg.RelayBuffer = units.MB(40)
	return cfg
}

func TestPublicRun(t *testing.T) {
	r, err := vdtn.Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Created == 0 {
		t.Fatal("no messages created via public API")
	}
	if r.Delivered == 0 {
		t.Fatal("nothing delivered via public API")
	}
}

func TestPublicRunRejectsBadConfig(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Vehicles = 0
	if _, err := vdtn.Run(cfg); err == nil {
		t.Fatal("Run accepted an invalid config")
	}
}

func TestPublicDeterminism(t *testing.T) {
	a, err := vdtn.Run(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := vdtn.Run(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("public API runs not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestPublicWorldAccess(t *testing.T) {
	w, err := vdtn.NewWorld(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if w.NodeCount() != 11 {
		t.Fatalf("NodeCount = %d", w.NodeCount())
	}
	if w.Graph() == nil {
		t.Fatal("Graph() nil")
	}
	w.Run()
}

func TestExperimentCatalogExported(t *testing.T) {
	if len(vdtn.Experiments()) < 10 {
		t.Fatalf("catalog too small: %d", len(vdtn.Experiments()))
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if _, ok := vdtn.ExperimentByID(id); !ok {
			t.Fatalf("missing %s", id)
		}
	}
}

func TestRunExperimentViaFacade(t *testing.T) {
	exp, _ := vdtn.ExperimentByID("fig5")
	exp.Xs = []float64{30} // single point, small scenario below
	res, err := vdtn.RunExperimentE(exp, vdtn.ExperimentOptions{
		Seeds:      []uint64{1},
		BaseConfig: func() vdtn.Config { return smallConfig(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.DefaultTable()
	if len(tbl.Series) != 3 {
		t.Fatalf("fig5 series = %d, want 3 policies", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		v := s.Cells[0].Summary.Mean
		if v < 0 || v > 1 {
			t.Fatalf("series %s delivery prob %v out of range", s.Name, v)
		}
	}
	// Any other metric renders from the same finished sweep.
	over, err := res.Table(vdtn.MetricOverhead)
	if err != nil {
		t.Fatal(err)
	}
	if len(over.Series) != 3 {
		t.Fatalf("overhead view series = %d", len(over.Series))
	}
}

// minimalRouter checks that a custom router written purely against the
// public aliases satisfies the Router interface and runs.
type minimalRouter struct {
	self int
	buf  *vdtn.Buffer
}

func (r *minimalRouter) Name() string { return "minimal" }

func (r *minimalRouter) Attach(self int, buf *vdtn.Buffer) { r.self, r.buf = self, buf }

func (r *minimalRouter) ContactUp(now float64, p vdtn.Peer) {}

func (r *minimalRouter) ContactDown(now float64, p vdtn.Peer) {}

func (r *minimalRouter) Refresh(now float64, p vdtn.Peer) {}

func (r *minimalRouter) NextSend(now float64, p vdtn.Peer) *vdtn.Send {
	for _, m := range r.buf.Messages() {
		if m.To == p.ID() && !m.Expired(now) && !p.HasDelivered(m.ID) {
			return &vdtn.Send{Msg: m}
		}
	}
	return nil
}

func (r *minimalRouter) OnSent(now float64, p vdtn.Peer, s *vdtn.Send, delivered bool) {
	if delivered {
		r.buf.Remove(s.Msg.ID)
	}
}

func (r *minimalRouter) OnAbort(now float64, p vdtn.Peer, s *vdtn.Send) {}

func (r *minimalRouter) Receive(now float64, m *vdtn.Message, from vdtn.Peer) (bool, []*vdtn.Message) {
	return false, nil
}

func (r *minimalRouter) AddMessage(now float64, m *vdtn.Message) (bool, []*vdtn.Message) {
	evicted, ok := r.buf.Add(now, m, vdtn.NewFIFODrop())
	return ok, evicted
}

func TestCustomRouterViaPublicAPI(t *testing.T) {
	cfg := smallConfig(3)
	cfg.NewRouter = func(node int, rnd *vdtn.Rand) vdtn.Router { return &minimalRouter{} }
	r, err := vdtn.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Created == 0 {
		t.Fatal("custom-router run created nothing")
	}
	// minimalRouter is direct-delivery-like; it may deliver few messages,
	// but the run must complete and stay consistent.
	if r.Delivered > r.Created {
		t.Fatalf("delivered %d > created %d", r.Delivered, r.Created)
	}
}

func TestDropPolicyConstructors(t *testing.T) {
	if vdtn.NewFIFODrop().Name() != "FIFO" {
		t.Fatal("NewFIFODrop wrong policy")
	}
	if vdtn.NewLifetimeASCDrop().Name() != "LifetimeASC" {
		t.Fatal("NewLifetimeASCDrop wrong policy")
	}
}
