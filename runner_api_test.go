package vdtn_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"vdtn"
)

// TestGridSweepJSONLGolden is the CI gate for the grid runner and the
// JSONL sink format: the checked-in 2-axis grid spec (TTL × copy budget,
// with spec-level seeds) runs end-to-end through the Runner into a JSONL
// stream whose bytes are pinned by a golden file — the sink's ordering
// contract makes the stream deterministic, so any wire-format or
// cell-ordering drift fails here.
//
// Regenerate the golden after an intended format change with:
//
//	UPDATE_GOLDEN=1 go test . -run TestGridSweepJSONLGolden
func TestGridSweepJSONLGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) grid sweep")
	}
	data, err := os.ReadFile(filepath.Join("examples", "sweeps", "grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := vdtn.LoadExperimentSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "ttl-copies-grid" || exp.Axis != "ttl_min" || len(exp.Grid) != 1 || exp.Combos() != 2 {
		t.Fatalf("grid spec loaded wrong: axis %q, grid %+v", exp.Axis, exp.Grid)
	}
	if len(exp.Seeds) != 2 {
		t.Fatalf("spec-level seeds not loaded: %v", exp.Seeds)
	}

	var buf bytes.Buffer
	var mem vdtn.ExperimentMemorySink
	r := vdtn.Runner{Sink: vdtn.TeeExperimentSink(&mem, vdtn.NewExperimentJSONLSink(&buf))}
	if err := r.Run(context.Background(), exp); err != nil {
		t.Fatal(err)
	}

	// The grid ran its full cross-product under the spec's seeds.
	res := mem.Results()
	want := len(exp.Scenarios) * exp.Combos() * len(exp.Xs) * len(exp.Seeds)
	if len(res.Cells) != want || !res.Complete() {
		t.Fatalf("grid sweep stored %d cells, want %d", len(res.Cells), want)
	}

	// The stream parses: header, one line per cell, complete footer.
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != want+2 {
		t.Fatalf("stream has %d lines, want %d", len(lines), want+2)
	}
	var header struct {
		Format string `json:"format"`
		Grid   []struct {
			Axis string `json:"axis"`
		} `json:"grid"`
		Seeds []uint64 `json:"seeds"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	if header.Format == "" || len(header.Grid) != 1 || header.Grid[0].Axis != "copies" || len(header.Seeds) != 2 {
		t.Fatalf("bad stream header: %s", lines[0])
	}
	var footer struct {
		Cells    int  `json:"cells"`
		Complete bool `json:"complete"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &footer); err != nil {
		t.Fatal(err)
	}
	if !footer.Complete || footer.Cells != want {
		t.Fatalf("bad stream footer: %s", lines[len(lines)-1])
	}

	goldenPath := filepath.Join("testdata", "grid_sweep_golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("JSONL stream diverged from golden %s (run with UPDATE_GOLDEN=1 after an intended change)", goldenPath)
	}
}

// TestRunContextCancelTopLevel smoke-tests the public single-run
// cancellation surface: an already-cancelled context returns its error
// and a zero Result.
func TestRunContextCancelTopLevel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := vdtn.DefaultConfig()
	res, err := vdtn.RunContext(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Created != 0 || res.Delivered != 0 {
		t.Fatalf("cancelled run leaked a Result: %+v", res)
	}
}
