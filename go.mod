module vdtn

go 1.24
