package vdtn_test

import (
	"strings"
	"testing"

	"vdtn"
	"vdtn/internal/units"
)

// These tests cover the public contact-plan, scripted-traffic and tracing
// API end to end, the way a downstream user would drive them.

func TestPublicContactPlanScenario(t *testing.T) {
	plan, err := vdtn.NewContactPlan([]vdtn.Contact{
		{A: 0, B: 1, Start: 10, End: 60},
		{A: 1, B: 2, Start: 120, End: 180},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := vdtn.DefaultConfig()
	cfg.Plan = plan
	cfg.Vehicles = 3
	cfg.Relays = 0
	cfg.Duration = units.Hours(1)
	cfg.TTL = units.Minutes(30)
	cfg.Script = []vdtn.ScriptedMessage{
		{Time: 0, From: 0, To: 2, Size: units.MB(1)},
	}

	var lg vdtn.TraceLog
	cfg.Trace = lg.Append

	r, err := vdtn.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != 1 {
		t.Fatalf("delivered %d, want 1 (via relay hop)", r.Delivered)
	}

	a := vdtn.AnalyzeTrace(lg.Events(), cfg.Duration)
	if a.Delivered != 1 || a.Created != 1 {
		t.Fatalf("analysis: %+v", a)
	}
	path := a.DeliveryPath(1)
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Fatalf("delivery path = %v, want [0 1 2]", path)
	}
	if n := lg.Count(vdtn.TraceContactUp); n != 2 {
		t.Fatalf("traced %d contact ups, want 2", n)
	}
	if pairs := vdtn.TopContactPairs(lg.Events(), 1); len(pairs) != 1 {
		t.Fatalf("TopContactPairs = %v", pairs)
	}
}

func TestPublicParseContactPlan(t *testing.T) {
	plan, err := vdtn.ParseContactPlan("# demo\n5 25 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 1 || plan.Horizon() != 25 {
		t.Fatalf("plan = %d windows, horizon %v", plan.Len(), plan.Horizon())
	}
	if _, err := vdtn.ParseContactPlan("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPublicTraceWriter(t *testing.T) {
	var sb strings.Builder
	tw := vdtn.NewTraceWriter(&sb)
	cfg := smallConfig(4)
	cfg.Trace = tw.Emit
	if _, err := vdtn.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if tw.Err() != nil {
		t.Fatal(tw.Err())
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time\tkind\ta\tb\tmsg") {
		t.Fatalf("TSV header missing:\n%.100s", out)
	}
	if !strings.Contains(out, "contact_up") || !strings.Contains(out, "created") {
		t.Fatal("expected event kinds missing from stream")
	}
}
