package vdtn_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vdtn"
)

// TestSpecSweepEndToEnd is the CI gate for the declarative sweep engine:
// the checked-in custom spec (a sweep over the non-paper "vehicles" axis)
// loads, runs with a contact cache, produces a machine-readable JSON
// artifact, and renders a table matching the pinned golden file.
//
// Regenerate the golden after an intended behavior change with:
//
//	UPDATE_GOLDEN=1 go test . -run TestSpecSweepEndToEnd
func TestSpecSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) sweep")
	}
	data, err := os.ReadFile(filepath.Join("examples", "sweeps", "fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := vdtn.LoadExperimentSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "fleet-density" || exp.Axis != "vehicles" {
		t.Fatalf("spec loaded as %q on axis %q", exp.ID, exp.Axis)
	}

	cache := &vdtn.ContactCache{}
	res, err := vdtn.RunExperimentE(exp, vdtn.ExperimentOptions{ContactCache: cache})
	if err != nil {
		t.Fatal(err)
	}

	// The vehicles axis moves the contact process, so the cache records
	// one trace per swept value — and shares each across both series.
	if cache.Len() != len(exp.Xs) {
		t.Fatalf("cache holds %d traces, want %d (one per swept fleet size, shared across series)",
			cache.Len(), len(exp.Xs))
	}
	if cells := len(exp.Scenarios) * len(exp.Xs); len(res.Cells) != cells {
		t.Fatalf("stored %d cells, want %d", len(res.Cells), cells)
	}

	// The JSON artifact is machine-readable: full per-seed results plus
	// every metric pre-aggregated.
	artifact, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Experiment string    `json:"experiment"`
		Axis       string    `json:"axis"`
		Xs         []float64 `json:"xs"`
		Series     []struct {
			Name  string `json:"name"`
			Cells []struct {
				X    float64 `json:"x"`
				Runs []struct {
					Seed   uint64 `json:"seed"`
					Result struct {
						Created             int     `json:"created"`
						DeliveryProbability float64 `json:"delivery_probability"`
					} `json:"result"`
				} `json:"runs"`
				Metrics map[string]struct {
					Mean float64 `json:"mean"`
					N    int     `json:"n"`
				} `json:"metrics"`
			} `json:"cells"`
		} `json:"series"`
	}
	if err := json.Unmarshal(artifact, &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if decoded.Experiment != "fleet-density" || decoded.Axis != "vehicles" || len(decoded.Series) != 2 {
		t.Fatalf("artifact identity wrong: %+v", decoded)
	}
	for _, s := range decoded.Series {
		if len(s.Cells) != 3 {
			t.Fatalf("series %s has %d cells", s.Name, len(s.Cells))
		}
		for _, c := range s.Cells {
			if len(c.Runs) != 1 || c.Runs[0].Result.Created == 0 {
				t.Fatalf("series %s cell x=%v missing full run results", s.Name, c.X)
			}
			if _, ok := c.Metrics["overhead"]; !ok {
				t.Fatalf("series %s cell x=%v missing pre-aggregated metrics", s.Name, c.X)
			}
		}
	}

	// Golden table render: pins both the engine's output format and the
	// sweep's deterministic numbers.
	rendered := res.DefaultTable().Render()
	goldenPath := filepath.Join("testdata", "fleet_sweep_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(rendered), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if rendered != string(golden) {
		t.Fatalf("rendered table diverged from golden %s:\n--- got ---\n%s--- want ---\n%s",
			goldenPath, rendered, golden)
	}

	// A second metric renders from the same finished sweep.
	over, err := res.Table(vdtn.MetricOverhead)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(over.Render(), "overhead ratio") {
		t.Fatal("overhead view missing its metric label")
	}
}
