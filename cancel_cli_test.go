package vdtn_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestExperimentsSIGINTFlushesPartialArtifacts is the CI smoke gate for
// graceful CLI cancellation: cmd/experiments interrupted mid-sweep must
// exit non-zero, having still flushed every partial artifact — the CSV,
// the JSON artifact marked incomplete, and the JSONL stream footed with
// the interruption — instead of dying with nothing on disk.
func TestExperimentsSIGINTFlushesPartialArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and interrupts the real CLI")
	}
	if runtime.GOOS == "windows" {
		t.Skip("no SIGINT on windows")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	build := exec.Command("go", "build", "-o", bin, "./cmd/experiments")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/experiments: %v\n%s", err, out)
	}

	outDir := filepath.Join(dir, "out")
	jsonlDir := filepath.Join(dir, "jsonl")
	// fig4 at full scale runs far longer than the interrupt delay, so the
	// signal always lands mid-sweep.
	cmd := exec.Command(bin, "-figure", "fig4", "-out", outDir, "-out-jsonl", jsonlDir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	var waitErr error
	select {
	case waitErr = <-done:
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatal("CLI did not exit within 60s of SIGINT — cancellation is not cooperative")
	}

	// Non-zero exit, by the conventional interrupted code.
	exitErr, ok := waitErr.(*exec.ExitError)
	if !ok {
		t.Fatalf("interrupted CLI exited zero (stderr: %s)", &stderr)
	}
	if code := exitErr.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130 (stderr: %s)", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr does not report the interruption: %s", &stderr)
	}

	// Partial artifacts flushed: CSV (at least its header), JSON artifact
	// flagged incomplete, JSONL stream footed with the reason.
	csv, err := os.ReadFile(filepath.Join(outDir, "fig4.csv"))
	if err != nil {
		t.Fatalf("partial CSV not flushed: %v", err)
	}
	if !strings.HasPrefix(string(csv), "experiment,metric,x,series,mean,ci95,n") {
		t.Fatalf("partial CSV malformed: %q", csv)
	}

	artifact, err := os.ReadFile(filepath.Join(outDir, "fig4.json"))
	if err != nil {
		t.Fatalf("partial JSON artifact not flushed: %v", err)
	}
	var art struct {
		Experiment string `json:"experiment"`
		Complete   *bool  `json:"complete"`
	}
	if err := json.Unmarshal(artifact, &art); err != nil {
		t.Fatalf("partial JSON artifact is not valid JSON: %v", err)
	}
	if art.Experiment != "fig4" || art.Complete == nil || *art.Complete {
		t.Fatalf("partial JSON artifact not marked incomplete: %s", artifact)
	}

	stream, err := os.ReadFile(filepath.Join(jsonlDir, "fig4.jsonl"))
	if err != nil {
		t.Fatalf("partial JSONL stream not flushed: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(stream)), "\n")
	if len(lines) < 2 {
		t.Fatalf("JSONL stream has %d lines, want at least header + footer", len(lines))
	}
	var footer struct {
		Cells    int    `json:"cells"`
		Complete bool   `json:"complete"`
		Error    string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &footer); err != nil {
		t.Fatalf("JSONL footer missing or malformed: %v (last line %q)", err, lines[len(lines)-1])
	}
	if footer.Complete || footer.Error == "" {
		t.Fatalf("JSONL footer does not record the interruption: %+v", footer)
	}
	if footer.Cells != len(lines)-2 {
		t.Fatalf("JSONL footer counts %d cells, stream has %d", footer.Cells, len(lines)-2)
	}
}
