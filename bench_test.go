// Benchmarks regenerating the paper's evaluation: one testing.B benchmark
// per table and figure (and per DESIGN.md ablation), each running the full
// experiment on a time-scaled scenario and reporting the headline metric.
//
// The scale (benchScale of the paper's 12-hour horizon) keeps `go test
// -bench=.` tractable while preserving the result *shape*; the full-
// fidelity tables come from `go run ./cmd/experiments -figure all`.
package vdtn_test

import (
	"testing"

	"vdtn"
	"vdtn/internal/bundle"
	"vdtn/internal/core"
	"vdtn/internal/units"
	"vdtn/internal/xrand"
)

// benchScale shrinks the simulated horizon for benchmark runs (0.25 =
// 3 simulated hours).
const benchScale = 0.25

// runExperiment executes the catalog experiment under the bench scale and
// reports the mean of the first and last series' final cells, so a bench
// run surfaces the headline comparison without drowning the output.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := vdtn.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %q not in catalog", id)
	}
	opt := vdtn.ExperimentOptions{Seeds: []uint64{1}, Scale: benchScale}
	var tbl vdtn.ExperimentTable
	for i := 0; i < b.N; i++ {
		res, err := vdtn.RunExperimentE(exp, opt)
		if err != nil {
			b.Fatal(err)
		}
		tbl = res.DefaultTable()
	}
	last := len(exp.Xs) - 1
	first := tbl.Series[0].Cells[last].Summary.Mean
	worst := tbl.Series[len(tbl.Series)-1].Cells[last].Summary.Mean
	b.ReportMetric(first, "series0_xmax")
	b.ReportMetric(worst, "seriesN_xmax")
	b.ReportMetric(float64(len(exp.Scenarios)*len(exp.Xs)), "simruns/op")
}

// BenchmarkTable1PolicyOrdering covers the paper's Table I: the cost of
// the three combined scheduling policies ordering a full vehicle buffer.
func BenchmarkTable1PolicyOrdering(b *testing.B) {
	rng := xrand.New(1)
	msgs := make([]*bundle.Message, 800) // ~a full 100 MB buffer of ~1.25MB bundles
	for i := range msgs {
		m := bundle.New(bundle.ID(i+1), 0, 1, units.KB(1250), rng.Float64()*1000, 3600+rng.Float64()*7200)
		m.ReceivedAt = rng.Float64() * 5000
		msgs[i] = m
	}
	for _, pol := range []core.SchedulingPolicy{
		core.FIFOSchedule{},
		core.RandomSchedule{Rng: xrand.New(2)},
		core.LifetimeDESCSchedule{},
	} {
		b.Run(pol.Name(), func(b *testing.B) {
			work := make([]*bundle.Message, len(msgs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, msgs)
				pol.Order(5000, work)
			}
		})
	}
}

// BenchmarkFig4EpidemicDelay regenerates Figure 4: message average delay
// under Epidemic routing for the three Table I policies across the TTL
// sweep.
func BenchmarkFig4EpidemicDelay(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5EpidemicDelivery regenerates Figure 5: delivery probability
// under Epidemic routing.
func BenchmarkFig5EpidemicDelivery(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6SprayWaitDelay regenerates Figure 6: message average delay
// under binary Spray-and-Wait (N=12).
func BenchmarkFig6SprayWaitDelay(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7SprayWaitDelivery regenerates Figure 7: delivery
// probability under binary Spray-and-Wait.
func BenchmarkFig7SprayWaitDelivery(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8ProtocolDelivery regenerates Figure 8: delivery probability
// for Epidemic-Lifetime, SprayAndWait-Lifetime, MaxProp and PRoPHET.
func BenchmarkFig8ProtocolDelivery(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9ProtocolDelay regenerates Figure 9: message average delay
// for the four protocols.
func BenchmarkFig9ProtocolDelay(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkAblationRate regenerates the link-rate ablation (paper §III.C
// conjecture: scarcer bandwidth amplifies the policy impact).
func BenchmarkAblationRate(b *testing.B) { runExperiment(b, "ablation-rate") }

// BenchmarkAblationBuffer regenerates the buffer-size ablation.
func BenchmarkAblationBuffer(b *testing.B) { runExperiment(b, "ablation-buffer") }

// BenchmarkAblationCopies regenerates the Spray-and-Wait copy-budget
// ablation.
func BenchmarkAblationCopies(b *testing.B) { runExperiment(b, "ablation-copies") }

// BenchmarkAblationRelays regenerates the relay-count ablation.
func BenchmarkAblationRelays(b *testing.B) { runExperiment(b, "ablation-relays") }

// BenchmarkExperimentUncached is the baseline for the contact-cache
// comparison: fig5's 15-cell sweep with every cell re-simulating mobility.
func BenchmarkExperimentUncached(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkExperimentCached runs the same sweep through the contact-trace
// cache: one mobility recording per seed, replayed by all 15 cells.
// Results are bit-identical to the uncached run (see
// TestContactCacheSpeedupArtifact); only the wall clock moves.
func BenchmarkExperimentCached(b *testing.B) {
	exp, ok := vdtn.ExperimentByID("fig5")
	if !ok {
		b.Fatal("fig5 not in catalog")
	}
	opt := vdtn.ExperimentOptions{Seeds: []uint64{1}, Scale: benchScale}
	for i := 0; i < b.N; i++ {
		// A fresh cache per iteration: the measurement includes the
		// recording pass, as a cold harness run would pay it.
		opt.ContactCache = &vdtn.ContactCache{}
		if _, err := vdtn.RunExperimentE(exp, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(exp.Scenarios)*len(exp.Xs)), "simruns/op")
}

// BenchmarkPaperRun measures one full-fidelity 12-hour paper scenario run
// (Epidemic/Lifetime at TTL 120), the unit of cost behind every figure.
func BenchmarkPaperRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := vdtn.PaperConfig(120, vdtn.ProtoEpidemic, vdtn.PolicyLifetime, uint64(i+1))
		if _, err := vdtn.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
