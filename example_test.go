package vdtn_test

import (
	"context"
	"fmt"

	"vdtn"
	"vdtn/internal/units"
)

// ExampleParseContactPlan shows loading a recorded connectivity trace.
func ExampleParseContactPlan() {
	plan, err := vdtn.ParseContactPlan(`
# two bus meetings at a stop
60 90 0 2
660 690 1 2
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Len(), "windows, horizon", plan.Horizon(), "s, nodes up to", plan.MaxNode())
	// Output: 2 windows, horizon 690 s, nodes up to 2
}

// ExampleNewContactPlan shows plan validation and window merging.
func ExampleNewContactPlan() {
	plan, err := vdtn.NewContactPlan([]vdtn.Contact{
		{A: 0, B: 1, Start: 10, End: 30},
		{A: 1, B: 0, Start: 25, End: 40}, // same pair, overlapping: merged
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Len(), "window:", plan.Windows()[0].Start, "to", plan.Windows()[0].End)
	// Output: 1 window: 10 to 40
}

// ExampleRun shows the exact-timing determinism of contact-plan mode: one
// scheduled contact, one scripted 1.5 MB message (2 s at 6 Mbit/s), and a
// delivery whose delay is computable by hand.
func ExampleRun() {
	plan, _ := vdtn.NewContactPlan([]vdtn.Contact{{A: 0, B: 1, Start: 10, End: 60}})
	cfg := vdtn.DefaultConfig()
	cfg.Plan = plan
	cfg.Vehicles = 2
	cfg.Relays = 0
	cfg.Duration = units.Hours(1)
	cfg.Script = []vdtn.ScriptedMessage{{Time: 5, From: 0, To: 1, Size: units.MB(1.5)}}

	result, err := vdtn.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d/%d, delay %.0f s\n",
		result.Delivered, result.Created, result.AvgDelay)
	// Output: delivered 1/1, delay 7 s
}

// ExampleRunContext shows cooperative cancellation: the run stops at an
// event-loop checkpoint and returns the context's error with a zero
// Result — never a torn one. (A real caller wires the context to a
// signal or timeout; a pre-cancelled context makes the output
// deterministic here.)
func ExampleRunContext() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // e.g. SIGINT

	_, err := vdtn.RunContext(ctx, vdtn.DefaultConfig())
	fmt.Println(err)
	// Output: context canceled
}

// ExampleRunner shows the sweep runner with a pluggable result sink: the
// memory sink reproduces RunExperimentE, and the same Runner accepts a
// context for cancellation and an observer for progress.
func ExampleRunner() {
	exp, _ := vdtn.ExperimentByID("fig5")
	exp.Xs = exp.Xs[:1] // one TTL point to keep the example fast

	var mem vdtn.ExperimentMemorySink
	r := vdtn.Runner{
		Options: vdtn.ExperimentOptions{Scale: 0.02},
		Sink:    &mem,
	}
	if err := r.Run(context.Background(), exp); err != nil {
		panic(err)
	}
	res := mem.Results()
	fmt.Println(len(res.Cells), "cells, complete:", res.Complete())
	// Output: 3 cells, complete: true
}

// ExampleConfig_Validate shows the validation a scenario goes through.
func ExampleConfig_Validate() {
	cfg := vdtn.DefaultConfig()
	cfg.Vehicles = 1 // too few for traffic
	fmt.Println(cfg.Validate())
	// Output: sim: need at least 2 vehicles for traffic, got 1
}
